"""Static performance auditor, drift gate, and benchmark comparator.

The paper's claims are performance *ratios* — coalesced transactions,
full-warp CW write-back, shared-memory-bounded occupancy (Tables 4-7,
Figures 8-13) — so this module makes the performance model itself a
checked contract, in three layers:

**Static audit** (:func:`perf_audit`)
    Given only a graph's representations (through the same
    ``preflight_representations()`` hooks the structural validators use),
    derive per-stage cost bounds *without running an iteration* and
    assert the paper-contract properties: CW write-back occupancy at
    least G-Shards' (``P301``), shard footprint within shared memory
    (``P302``), write-back payload equal to ``|E|`` vertex values under
    both schemes (``P303``/``P304``), bounded bank-conflict replays and
    load efficiencies (``P305``/``P306``), the analytic scatter bound
    a window-grouped Mapper guarantees (``P307``), and frontier-gated
    sweep pricing — the per-shard stats rows a ``frontier="sparse"``
    iteration charges must reproduce the full-sweep prediction exactly
    when every shard is active, so skipping a quiescent shard subtracts
    exactly that shard's cost (``P308``).  The cost constants in
    :mod:`repro.frameworks.costs` are checked against their contracted
    mirror in :mod:`repro.analysis.budgets` (``P310``).

**Drift gate** (:func:`drift_gate`)
    Price every stage independently (a per-shard mirror of the reference
    formulas, deliberately *not* sharing code with the wave-batched fast
    path), run the engine with the tracer on, and diff the measured
    :class:`~repro.gpu.stats.KernelStats` span counters against the
    predictions — exact for transaction/lane/byte counters (``P311``),
    toleranced for instruction costs (``P312``).  This is what catches a
    fast-path or pricing refactor that silently changes the model.

**Benchmark comparator** (:func:`compare_bench_reports`)
    Diff a fresh ``BENCH_perf_smoke.json`` against the committed baseline
    with per-metric relative thresholds (``P320``) after verifying the
    two runs are comparable at all — same graph, program, and per-engine
    ``exec_path`` (``P321``).  The service-throughput gate holds the
    batching contract (``P322``) and drifts ``BENCH_service.json``
    against its baseline (``P323``); the frontier gate holds the
    work-efficiency contract — sparse tail iterations must price at
    least :data:`~repro.analysis.budgets.FRONTIER_MIN_MODEL_SAVINGS`
    times fewer modeled warp instructions than the full sweep (``P324``)
    — and drifts ``BENCH_frontier.json`` against its baseline
    (``P325``).  ``python -m repro perfgate`` drives all of it.

CuSha stage predictions here intentionally mirror the *reference*
per-shard pricing loop using only the simple (non-segmented) primitives;
agreement with the measured fast path therefore cross-validates the
segmented pricing helpers in :mod:`repro.frameworks.wavebatch` as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis import budgets
from repro.analysis.violations import Violation
from repro.frameworks import costs
from repro.frameworks.base import RunConfig
from repro.frameworks.cusha import CuShaEngine
from repro.frameworks.streamed import StreamedCuShaEngine
from repro.frameworks.vwc import VWCEngine
from repro.graph.cw import ConcatenatedWindows
from repro.graph.shards import GShards
from repro.gpu.memory import contiguous_transactions, gather_transactions
from repro.gpu.occupancy import occupancy_report
from repro.gpu.sharedmem import conflict_replays, replay_fraction
from repro.gpu.stats import (COUNTER_FIELDS, KernelStats,
                             LOAD_GRANULARITY_BYTES, STORE_GRANULARITY_BYTES,
                             field_diffs)
from repro.gpu.warp import slots_for_contiguous
from repro.telemetry.tracer import Tracer

__all__ = [
    "StagePrediction",
    "DriftReport",
    "cost_contract_check",
    "predict_cusha_stages",
    "predict_streamed_chunks",
    "static_predictions",
    "audit_cw",
    "narrowed_audit",
    "perf_audit",
    "drift_gate",
    "compare_bench_reports",
    "check_service_contract",
    "compare_service_reports",
    "check_frontier_contract",
    "compare_frontier_reports",
    "check_ranges_contract",
    "compare_ranges_reports",
    "check_placement_contract",
    "compare_placement_reports",
]


@dataclass(frozen=True)
class StagePrediction:
    """Per-sweep static cost prediction for one pipeline stage.

    ``stats`` is what one full sweep (every shard active) costs;
    ``dynamic_fields`` names the counters the static model deliberately
    does not cover (they depend on which vertices update) and which the
    drift gate therefore skips.
    """

    stage: str
    stats: KernelStats
    dynamic_fields: tuple[str, ...] = ()

    @property
    def exact_fields(self) -> tuple[str, ...]:
        return tuple(f for f in COUNTER_FIELDS if f not in self.dynamic_fields)


@dataclass
class DriftReport:
    """Outcome of one :func:`drift_gate` run."""

    engine: str
    program: str
    iterations: int
    stages_checked: int
    fields_checked: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


# ----------------------------------------------------------------------
# Cost contract (P310)
# ----------------------------------------------------------------------

def cost_contract_check() -> list[Violation]:
    """Diff the live :mod:`repro.frameworks.costs` constants against the
    contracted mirror in :mod:`repro.analysis.budgets` (``P310``)."""
    out: list[Violation] = []
    for name, want in budgets.COST_CONTRACT.items():
        have = getattr(costs, name, None)
        if have is None or float(have) != float(want):
            out.append(Violation(
                "P310",
                f"costs.{name} = {have!r} diverges from the contracted "
                f"value {want!r} in analysis.budgets",
                subject="frameworks.costs",
            ))
    for name in dir(costs):
        if name.startswith("INSTR_") and name not in budgets.COST_CONTRACT:
            out.append(Violation(
                "P310",
                f"costs.{name} is not covered by "
                "analysis.budgets.COST_CONTRACT",
                subject="frameworks.costs",
            ))
    return out


# ----------------------------------------------------------------------
# Independent per-stage predictors
# ----------------------------------------------------------------------

def predict_cusha_stages(
    cw: ConcatenatedWindows,
    mode: str,
    *,
    vbytes: int,
    sbytes: int = 0,
    ebytes: int = 0,
    warp: int = 32,
) -> dict[str, StagePrediction]:
    """Per-sweep stage costs of the CuSha pipeline, from the arrays alone.

    Mirrors the reference per-shard pricing (paper Figure 5 stages) with
    the simple one-range primitives: per shard, stage 1/3 fetch the
    vertex slice, stage 2 streams the SoA entry fields and pays atomic
    bank-conflict replays, stage 4 is a warp-per-window walk (``gs``) or
    a thread-per-CW-entry scatter through the Mapper (``cw``).
    """
    sh = cw.shards
    S = sh.num_shards
    st1, st2, st3, st4 = (KernelStats() for _ in range(4))
    for i in range(S):
        lo, hi = sh.vertex_range(i)
        n_i = hi - lo
        m_i = sh.shard_size(i)
        o = int(sh.shard_offsets[i])
        vv_load = contiguous_transactions(
            n_i, vbytes, start_byte=lo * vbytes, warp_size=warp,
            transaction_bytes=LOAD_GRANULARITY_BYTES)
        st1.add_load(vv_load)
        st1.add_lanes(*slots_for_contiguous(n_i, warp),
                      instructions_per_row=costs.INSTR_INIT)
        for b in (vbytes, 4, sbytes, ebytes):
            if b:
                st2.add_load(contiguous_transactions(
                    m_i, b, start_byte=o * b, warp_size=warp,
                    transaction_bytes=LOAD_GRANULARITY_BYTES))
        st2.add_lanes(*slots_for_contiguous(m_i, warp),
                      instructions_per_row=costs.INSTR_COMPUTE)
        dest_local = sh.dest_index[o:o + m_i].astype(np.int64) - lo
        st2.add_instructions(
            conflict_replays(dest_local, warp_size=warp)
            * costs.INSTR_ATOMIC_REPLAY)
        st3.add_load(vv_load)
        st3.add_lanes(*slots_for_contiguous(n_i, warp),
                      instructions_per_row=costs.INSTR_UPDATE)
        if mode == "gs":
            starts = sh.window_offsets[:, i]
            stops = sh.window_offsets[:, i + 1]
            for j in np.flatnonzero(stops - starts):
                w = int(stops[j] - starts[j])
                s0 = int(starts[j])
                st4.add_load(contiguous_transactions(
                    w, 4, start_byte=s0 * 4, warp_size=warp,
                    transaction_bytes=LOAD_GRANULARITY_BYTES))
                st4.add_store(contiguous_transactions(
                    w, vbytes, start_byte=s0 * vbytes, warp_size=warp,
                    transaction_bytes=STORE_GRANULARITY_BYTES))
                st4.add_lanes(*slots_for_contiguous(w, warp),
                              instructions_per_row=costs.INSTR_WRITEBACK)
            st4.add_load(contiguous_transactions(
                S + 1, 8, warp_size=warp,
                transaction_bytes=LOAD_GRANULARITY_BYTES))
            st4.add_instructions(S * costs.INSTR_GS_WINDOW_SCAN)
        else:
            L = cw.cw_size(i)
            cwo = int(cw.cw_offsets[i])
            cw_read = contiguous_transactions(
                L, 4, start_byte=cwo * 4, warp_size=warp,
                transaction_bytes=LOAD_GRANULARITY_BYTES)
            st4.add_load(cw_read)
            st4.add_load(cw_read)
            st4.add_store(gather_transactions(
                cw.mapper[cw.cw_slice(i)], vbytes, warp_size=warp,
                transaction_bytes=STORE_GRANULARITY_BYTES))
            st4.add_lanes(*slots_for_contiguous(L, warp),
                          instructions_per_row=costs.INSTR_WRITEBACK)
    return {
        "stage1-fetch": StagePrediction("stage1-fetch", st1),
        "stage2-compute": StagePrediction(
            "stage2-compute", st2, dynamic_fields=("shared_atomics",)),
        "stage3-update": StagePrediction(
            "stage3-update", st3,
            dynamic_fields=("store_transactions", "store_bytes_requested")),
        "stage4-writeback": StagePrediction("stage4-writeback", st4),
    }


def predict_streamed_chunks(
    cw: ConcatenatedWindows,
    chunks: list[tuple[int, int]],
    *,
    vbytes: int,
    sbytes: int = 0,
    ebytes: int = 0,
    warp: int = 32,
) -> dict[str, StagePrediction]:
    """Per-sweep static costs of the streamed engine's compute chunks.

    A chunk's kernel runs stages 1-2 for its shard range; stores and
    atomic ops are dynamic and excluded from the exact contract.
    """
    sh = cw.shards
    dynamic = ("store_transactions", "store_bytes_requested",
               "shared_atomics")
    out: dict[str, StagePrediction] = {}
    for k, (a, b) in enumerate(chunks):
        st = KernelStats()
        for i in range(a, b):
            lo, hi = sh.vertex_range(i)
            n_i = hi - lo
            m_i = sh.shard_size(i)
            o = int(sh.shard_offsets[i])
            st.add_load(contiguous_transactions(
                n_i, vbytes, start_byte=lo * vbytes, warp_size=warp,
                transaction_bytes=LOAD_GRANULARITY_BYTES))
            st.add_lanes(*slots_for_contiguous(n_i, warp),
                         instructions_per_row=costs.INSTR_INIT)
            for fb in (vbytes, 4, sbytes, ebytes):
                if fb:
                    st.add_load(contiguous_transactions(
                        m_i, fb, start_byte=o * fb, warp_size=warp,
                        transaction_bytes=LOAD_GRANULARITY_BYTES))
            st.add_lanes(*slots_for_contiguous(m_i, warp),
                         instructions_per_row=costs.INSTR_COMPUTE)
        name = f"chunk-{k}-compute"
        out[name] = StagePrediction(name, st, dynamic_fields=dynamic)
    return out


def static_predictions(
    engine, graph, program, config: RunConfig | None = None
) -> dict[str, StagePrediction]:
    """Per-sweep stage predictions for an engine's run over ``graph``.

    CuSha and streamed predictions are derived independently here; VWC
    predictions come from the engine's own static schedule export (its
    three lockstep phases are re-emitted verbatim every iteration, so the
    drift gate still pins the measured spans to them bit-for-bit).
    Engines that model no GPU (mtcpu, scalar) predict nothing.
    """
    cfg = config or RunConfig()
    vbytes = program.vertex_value_bytes
    sbytes = program.static_value_bytes
    ebytes = program.edge_value_bytes
    if isinstance(engine, CuShaEngine):
        (cw,) = engine.preflight_representations(graph, program, cfg)
        return predict_cusha_stages(
            cw, engine.mode, vbytes=vbytes, sbytes=sbytes, ebytes=ebytes,
            warp=engine.spec.warp_size)
    if isinstance(engine, StreamedCuShaEngine):
        (cw,) = engine.preflight_representations(graph, program, cfg)
        entry_bytes = 4 + vbytes + sbytes + ebytes + 4 + 4
        chunks = engine._chunk_shards(cw, entry_bytes)
        return predict_streamed_chunks(
            cw, chunks, vbytes=vbytes, sbytes=sbytes, ebytes=ebytes,
            warp=engine.spec.warp_size)
    if isinstance(engine, VWCEngine):
        phases = engine.predicted_stage_stats(graph, program)
        return {k: StagePrediction(k, v) for k, v in phases.items()}
    return {}


# ----------------------------------------------------------------------
# Static audit (P301-P308)
# ----------------------------------------------------------------------

def audit_cw(
    cw: ConcatenatedWindows,
    *,
    vbytes: int,
    sbytes: int = 0,
    ebytes: int = 0,
    spec,
    threads_per_block: int = 512,
    subject: str = "",
) -> list[Violation]:
    """Assert the paper's performance contract over one CW structure."""
    out: list[Violation] = []
    sh = cw.shards
    S = sh.num_shards
    E = cw.num_edges
    warp = spec.warp_size
    N = cw.vertices_per_shard
    subject = subject or repr(cw)

    # P302 — shard footprint vs shared memory.
    rep = occupancy_report(spec, N, vbytes, threads_per_block)
    if not rep.fits:
        out.append(Violation(
            "P302",
            f"shard of {N} vertices needs {rep.shared_bytes_per_block} "
            f"shared bytes/block; 0 blocks fit an SM "
            f"({spec.shared_mem_per_sm_bytes} bytes, "
            f"{threads_per_block} threads/block)",
            subject=subject,
        ))

    win_sizes = np.diff(sh.window_offsets, axis=1)  # w_ji: row j, column i
    col_sizes = win_sizes.sum(axis=0)  # entries written back per target shard
    L = np.diff(cw.cw_offsets)

    # P303 — both write-back schemes must store exactly |E| vertex values.
    gs_payload = int(win_sizes.sum()) * vbytes
    cw_payload = int(L.sum()) * vbytes
    if not (gs_payload == cw_payload == E * vbytes):
        out.append(Violation(
            "P303",
            f"stage-4 store payloads disagree: GS {gs_payload} B, "
            f"CW {cw_payload} B, expected |E|*vbytes = {E * vbytes} B",
            subject=subject,
        ))

    # P304 — CW lane slots must be the dense packing of the same entries
    # the GS windows cover (L_i = sum_j w_ji), mapper covering every slot.
    if int(cw.mapper.size) != E or not np.array_equal(L, col_sizes):
        out.append(Violation(
            "P304",
            "CW write-back lane slots deviate from the dense-packing "
            f"optimum: per-shard CW sizes {L.tolist()[:8]}... vs window "
            f"column totals {col_sizes.tolist()[:8]}... "
            f"(mapper covers {int(cw.mapper.size)}/{E} slots)",
            subject=subject,
        ))

    # P301 — CW write-back occupancy must not fall below G-Shards.
    nz = win_sizes[win_sizes > 0]
    gs_total = int((-(-nz // warp)).sum()) * warp
    cw_total = int((-(-L // warp)).sum()) * warp
    occ_cw = E / cw_total if cw_total else 1.0
    occ_gs = E / gs_total if gs_total else 1.0
    if occ_cw < occ_gs - budgets.OCCUPANCY_EPSILON:
        out.append(Violation(
            "P301",
            f"predicted CW write-back lane occupancy {occ_cw:.4f} < "
            f"G-Shards {occ_gs:.4f} (paper claims CW >= GS)",
            subject=subject,
        ))

    # P305 — stage-2 atomic replays vs the fully serialized worst case.
    replays = 0
    rows2 = 0
    for i in range(S):
        o = int(sh.shard_offsets[i])
        m_i = sh.shard_size(i)
        lo, _hi = sh.vertex_range(i)
        dest_local = sh.dest_index[o:o + m_i].astype(np.int64) - lo
        replays += conflict_replays(dest_local, warp_size=warp)
        rows2 += -(-m_i // warp) if m_i else 0
    frac = replay_fraction(replays, rows2, warp_size=warp)
    if rows2 >= budgets.REPLAY_WARN_MIN_ROWS and \
            frac >= budgets.REPLAY_WARN_FRACTION:
        out.append(Violation(
            "P305",
            f"predicted stage-2 atomic replays at {frac:.0%} of the fully "
            f"serialized worst case ({replays} replays over {rows2} warp "
            "rows): destinations concentrate in few banks",
            subject=subject,
            severity="warning",
        ))

    # P306 / P307 need the per-stage predictions (cheap at audit sizes).
    preds = predict_cusha_stages(
        cw, "cw", vbytes=vbytes, sbytes=sbytes, ebytes=ebytes, warp=warp)
    for stage in ("stage1-fetch", "stage2-compute"):
        eff = preds[stage].stats.gld_efficiency
        if eff < budgets.STAGE_LOAD_EFFICIENCY_FLOOR:
            out.append(Violation(
                "P306",
                f"predicted {stage} load efficiency {eff:.2f} below the "
                f"coalescing floor {budgets.STAGE_LOAD_EFFICIENCY_FLOOR}",
                subject=subject,
                severity="warning",
            ))

    # P307 — analytic scatter bound for a window-grouped Mapper: each
    # nonzero window is a contiguous ascending SrcValue run costing at
    # most ceil(bytes/128)+1 store transactions, plus at most one extra
    # per warp row for runs split at row boundaries.
    predicted_tx = preds["stage4-writeback"].stats.store_transactions
    bound = int(
        (-(-(nz * vbytes) // STORE_GRANULARITY_BYTES)).sum()
        + nz.size
        + (-(-L // warp)).sum()
    )
    if predicted_tx > bound:
        out.append(Violation(
            "P307",
            f"CW write-back predicts {predicted_tx} store transactions, "
            f"above the window-grouped Mapper bound {bound}: the mapper "
            "scatters instead of grouping windows",
            subject=subject,
        ))

    # P308 — frontier-gated sweep pricing.  A frontier="sparse" iteration
    # charges the row sums of the per-shard static matrices over the
    # shards it actually processes; with every shard active those sums
    # must reproduce this module's independent full-sweep prediction
    # field-for-field, so skipping a quiescent shard subtracts exactly
    # that shard's cost and an all-active sparse sweep prices identically
    # to frontier="off".
    from repro.frameworks.wavebatch import cusha_static_bundle, stats_from_row
    for mode in ("cw", "gs"):
        bundle = cusha_static_bundle(cw, mode, warp, vbytes, sbytes, ebytes)
        mode_preds = preds if mode == "cw" else predict_cusha_stages(
            cw, mode, vbytes=vbytes, sbytes=sbytes, ebytes=ebytes, warp=warp)
        for mat, key in (
            (bundle.stage1, "stage1-fetch"),
            (bundle.stage2, "stage2-compute"),
            (bundle.stage3, "stage3-update"),
            (bundle.stage4, "stage4-writeback"),
        ):
            summed = stats_from_row(mat.sum(axis=0))
            bad = field_diffs(summed, mode_preds[key].stats)
            if bad:
                out.append(Violation(
                    "P308",
                    f"frontier per-shard pricing for {mode}/{key} does "
                    "not sum to the full-sweep prediction: "
                    + ", ".join(f"{f}: {a} != {b}"
                                for f, (a, b) in sorted(bad.items())),
                    subject=subject,
                ))
    return out


def perf_audit(
    engine, graph, program, config: RunConfig | None = None
) -> list[Violation]:
    """Layer-1 static audit behind ``RunConfig(validate="perf")``.

    Checks the cost contract (``P310``) and, for every CW / G-Shards
    representation the engine is about to execute over, the structural
    performance contract (``P301``-``P308``).  A ``narrow != "off"``
    config additionally re-prices the sweep at the proven narrowed
    widths (``P309``).  Engines that model no GPU hardware only get the
    cost-contract check.
    """
    cfg = config or RunConfig()
    out = cost_contract_check()
    spec = getattr(engine, "spec", None)
    if spec is None or not hasattr(spec, "warp_size"):
        return out
    tpb = getattr(engine, "threads_per_block", 512)
    subject = f"{engine.name}/{program.name}"
    for rep in engine.preflight_representations(graph, program, cfg):
        if isinstance(rep, ConcatenatedWindows):
            cw = rep
        elif isinstance(rep, GShards):
            cw = ConcatenatedWindows(rep)
        else:
            continue
        out.extend(audit_cw(
            cw,
            vbytes=program.vertex_value_bytes,
            sbytes=program.static_value_bytes,
            ebytes=program.edge_value_bytes,
            spec=spec,
            threads_per_block=tpb,
            subject=subject,
        ))
    if getattr(cfg, "narrow", "off") != "off":
        out.extend(narrowed_audit(engine, graph, program, cfg))
    return out


def narrowed_audit(
    engine, graph, program, config: RunConfig | None = None
) -> list[Violation]:
    """``P309``: static predictions at proven narrowed widths stay exact.

    When the range certificates justify a narrowing plan, the per-shard
    static cost matrices priced at the *narrowed* ``vertex_value_bytes``
    must row-sum to the independent full-sweep prediction at the same
    widths, field-for-field — the same closure property P308 holds at the
    declared widths.  This is what lets the auditor hand the tighter byte
    bounds to the narrowed fast path without a second pricing model.
    """
    from repro.analysis.ranges import analyze_ranges, narrowing_plan
    from repro.frameworks.narrow import NarrowedProgram

    out: list[Violation] = []
    spec = getattr(engine, "spec", None)
    if spec is None or not hasattr(spec, "warp_size"):
        return out
    cfg = config or RunConfig()
    subject = f"{engine.name}/{program.name}"
    cert = analyze_ranges(program, graph, cache=getattr(engine, "cache", None))
    plan = narrowing_plan(cert, program)
    if not plan:
        return out
    narrowed = NarrowedProgram(
        program, plan, {f: cert.field_range(f) for f in plan}
    )
    vbytes = narrowed.vertex_value_bytes
    if vbytes >= program.vertex_value_bytes:
        out.append(Violation(
            "P309",
            f"narrowing plan {sorted(plan)} did not shrink the vertex "
            f"value ({vbytes} bytes vs declared "
            f"{program.vertex_value_bytes})",
            subject=subject,
        ))
        return out
    sbytes = narrowed.static_value_bytes
    ebytes = narrowed.edge_value_bytes
    warp = spec.warp_size
    from repro.frameworks.wavebatch import cusha_static_bundle, stats_from_row
    for rep in engine.preflight_representations(graph, program, cfg):
        if isinstance(rep, ConcatenatedWindows):
            cw = rep
        elif isinstance(rep, GShards):
            cw = ConcatenatedWindows(rep)
        else:
            continue
        for mode in ("cw", "gs"):
            bundle = cusha_static_bundle(
                cw, mode, warp, vbytes, sbytes, ebytes)
            preds = predict_cusha_stages(
                cw, mode, vbytes=vbytes, sbytes=sbytes, ebytes=ebytes,
                warp=warp)
            for mat, key in (
                (bundle.stage1, "stage1-fetch"),
                (bundle.stage2, "stage2-compute"),
                (bundle.stage3, "stage3-update"),
                (bundle.stage4, "stage4-writeback"),
            ):
                summed = stats_from_row(mat.sum(axis=0))
                bad = field_diffs(summed, preds[key].stats)
                if bad:
                    out.append(Violation(
                        "P309",
                        f"narrowed per-shard pricing for {mode}/{key} "
                        "does not sum to the narrowed full-sweep "
                        "prediction: "
                        + ", ".join(f"{f}: {a} != {b}"
                                    for f, (a, b) in sorted(bad.items())),
                        subject=subject,
                    ))
    return out


# ----------------------------------------------------------------------
# Drift gate (P311 / P312)
# ----------------------------------------------------------------------

def _drift_runner(engine):
    """The engine actually run by the drift gate.

    CuSha's stage-4 cost is dynamic (only updated shards write back), so
    the gate runs the engine's existing ``always_writeback`` ablation —
    values and iteration counts are unchanged, but every stage becomes a
    full sweep the static model prices exactly.
    """
    if isinstance(engine, CuShaEngine) and not engine.always_writeback:
        return CuShaEngine(
            engine.mode,
            vertices_per_shard=engine.vertices_per_shard,
            spec=engine.spec,
            pcie=engine.pcie,
            resident_blocks=engine.resident_blocks,
            threads_per_block=engine.threads_per_block,
            sync_mode=engine.sync_mode,
            always_writeback=True,
            cache=engine.cache,
        )
    return engine


def _compare(
    pred: StagePrediction,
    got: KernelStats,
    *,
    scale: int,
    subject: str,
    what: str,
) -> tuple[list[Violation], int]:
    """Exact + toleranced comparison of one stage; returns (violations,
    number of fields checked)."""
    vios: list[Violation] = []
    exact = pred.exact_fields
    for f, (want, g) in field_diffs(pred.stats, got, exact,
                                    scale=scale).items():
        vios.append(Violation(
            "P311",
            f"{pred.stage}: {what} {f} = {g} != predicted {want} "
            f"({scale}x per-sweep)",
            subject=subject,
        ))
    want_instr = pred.stats.warp_instructions * scale
    tol = budgets.INSTRUCTION_DRIFT_TOLERANCE * max(1.0, abs(want_instr))
    if abs(got.warp_instructions - want_instr) > tol:
        vios.append(Violation(
            "P312",
            f"{pred.stage}: {what} warp_instructions = "
            f"{got.warp_instructions:.1f} drifts beyond "
            f"{budgets.INSTRUCTION_DRIFT_TOLERANCE:.0%} from predicted "
            f"{want_instr:.1f}",
            subject=subject,
        ))
    return vios, len(exact) + 1


def drift_gate(
    engine, graph, program, *, max_iterations: int = 16, metrics=None,
    narrow: str = "off",
) -> DriftReport:
    """Layer-2 model-vs-measured check for one engine/program/graph.

    Diffs (a) the engine's own static-stats export and (b) the traced
    per-stage span counters of a real run against the independent
    predictions.  Exact counters must match bit-for-bit over however
    many iterations ran; instruction totals get the budgeted tolerance.

    ``narrow="auto"`` runs the gate at the proven narrowed widths: the
    predictions price the narrowed program and the measured run executes
    with ``RunConfig(narrow="auto")``, so the same exact-counter contract
    holds for the narrowed fast path.
    """
    subject = f"{engine.name}/{program.name}"
    pred_program = program
    if narrow != "off":
        from repro.analysis.ranges import analyze_ranges, narrowing_plan
        from repro.frameworks.narrow import NarrowedProgram

        cert = analyze_ranges(
            program, graph, cache=getattr(engine, "cache", None))
        plan = narrowing_plan(cert, program)
        if plan:
            pred_program = NarrowedProgram(
                program, plan, {f: cert.field_range(f) for f in plan})
    preds = static_predictions(engine, graph, pred_program)
    exports = engine.predicted_stage_stats(graph, pred_program)
    vios: list[Violation] = []
    fields_checked = 0

    # (a) engine's static export vs independent predictions.  When the
    # prediction *is* the export (VWC), the self-comparison is skipped.
    for stage, pred in preds.items():
        exp = exports.get(stage)
        if exp is None:
            vios.append(Violation(
                "P311",
                f"engine exports no static stats for predicted stage "
                f"{stage}",
                subject=subject,
            ))
            continue
        if exp is pred.stats:
            continue
        v, n = _compare(pred, exp, scale=1, subject=subject,
                        what="exported")
        vios.extend(v)
        fields_checked += n

    # (b) traced run vs predictions.
    tracer = Tracer()
    runner = _drift_runner(engine)
    result = runner.run(graph, program, config=RunConfig(
        max_iterations=max_iterations,
        allow_partial=True,
        collect_traces=False,
        tracer=tracer,
        exec_path="fast",
        narrow=narrow,
    ))
    iterations = result.iterations
    measured: dict[str, KernelStats] = {}
    for span in tracer.find(kind="stage"):
        st = span.kernel_stats()
        if span.name in measured:
            measured[span.name] += st
        else:
            measured[span.name] = st
    stages_checked = 0
    for stage, pred in preds.items():
        got = measured.get(stage)
        if got is None:
            vios.append(Violation(
                "P311",
                f"run emitted no '{stage}' stage spans to check",
                subject=subject,
            ))
            continue
        stages_checked += 1
        v, n = _compare(pred, got, scale=iterations, subject=subject,
                        what="measured")
        vios.extend(v)
        fields_checked += n

    report = DriftReport(
        engine=engine.name,
        program=program.name,
        iterations=iterations,
        stages_checked=stages_checked,
        fields_checked=fields_checked,
        violations=vios,
    )
    if metrics is not None:
        metrics.counter("analysis.perf.stages_checked").inc(stages_checked)
        metrics.counter("analysis.perf.fields_checked").inc(fields_checked)
        metrics.counter("analysis.perf.drift_violations").inc(len(vios))
        metrics.gauge(
            f"analysis.perf.iterations.{engine.name}").set(iterations)
    return report


# ----------------------------------------------------------------------
# Benchmark comparator (P320 / P321)
# ----------------------------------------------------------------------

def compare_bench_reports(baseline: dict, current: dict) -> list[Violation]:
    """Diff a fresh perf_smoke report against the committed baseline.

    ``P321`` when the runs are not comparable (different graph, program,
    engine set, or per-engine ``exec_path``); ``P320`` when an exact
    metric changed or a timing metric regressed beyond its one-sided
    relative threshold.  Improvements never fail.
    """
    out: list[Violation] = []
    for key in budgets.PERFGATE_MATCH_KEYS:
        if baseline.get(key) != current.get(key):
            out.append(Violation(
                "P321",
                f"run configuration '{key}' differs: baseline "
                f"{baseline.get(key)!r} vs current {current.get(key)!r}",
                subject="perfgate",
            ))
    bengines = baseline.get("engines", {})
    cengines = current.get("engines", {})
    if set(bengines) != set(cengines):
        out.append(Violation(
            "P321",
            f"engine sets differ: baseline {sorted(bengines)} vs "
            f"current {sorted(cengines)}",
            subject="perfgate",
        ))
    thr = budgets.PERFGATE_TIMING_THRESHOLD
    for ek in sorted(set(bengines) & set(cengines)):
        b, c = bengines[ek], cengines[ek]
        for pk in ("exec_path", "reference_exec_path"):
            if b.get(pk) != c.get(pk):
                out.append(Violation(
                    "P321",
                    f"{ek}: {pk} differs (baseline {b.get(pk)!r} vs "
                    f"current {c.get(pk)!r}); refusing to compare "
                    "timings across execution paths",
                    subject="perfgate",
                ))
        for mk in budgets.PERFGATE_EXACT_METRICS:
            if b.get(mk) != c.get(mk):
                out.append(Violation(
                    "P320",
                    f"{ek}: exact metric {mk} changed from {b.get(mk)!r} "
                    f"to {c.get(mk)!r}",
                    subject="perfgate",
                ))
        for mk in budgets.PERFGATE_TIMING_METRICS:
            bv, cv = b.get(mk), c.get(mk)
            if not isinstance(bv, (int, float)) or \
                    not isinstance(cv, (int, float)) or bv <= 0:
                continue
            rel = (cv - bv) / bv
            if rel > thr:
                out.append(Violation(
                    "P320",
                    f"{ek}: {mk} regressed {rel:+.1%} "
                    f"({bv:.4f}s -> {cv:.4f}s), threshold +{thr:.0%}",
                    subject="perfgate",
                ))
    return out


# ----------------------------------------------------------------------
# Service throughput gate (P322 / P323)
# ----------------------------------------------------------------------

def check_service_contract(report: dict) -> list[Violation]:
    """Check a fresh ``BENCH_service.json`` against the absolute contract.

    ``P322`` when the batched-vs-sequential modeled throughput ratio
    falls below :data:`~repro.analysis.budgets.SERVICE_MIN_BATCH_SPEEDUP`
    (or is missing).  This needs no baseline: the ratio is computed from
    deterministic cost-model output, so the floor is a property of the
    checkout itself.
    """
    floor = budgets.SERVICE_MIN_BATCH_SPEEDUP
    speedup = report.get("service", {}).get("model_speedup")
    if not isinstance(speedup, (int, float)):
        return [Violation(
            "P322",
            "BENCH_service.json carries no service.model_speedup; the "
            "batching contract cannot be checked",
            subject="service",
        )]
    if speedup < floor:
        return [Violation(
            "P322",
            f"batched multi-source execution is only {speedup:.2f}x the "
            f"sequential modeled throughput (contract floor {floor:.1f}x)",
            subject="service",
        )]
    return []


def compare_service_reports(baseline: dict, current: dict) -> list[Violation]:
    """Diff a fresh service report against the committed service baseline.

    ``P321`` when the workloads are not comparable; ``P323`` when a
    deterministic metric changed or a wall-clock metric regressed beyond
    the one-sided threshold.  Improvements never fail.
    """
    out: list[Violation] = []
    for key in budgets.SERVICE_MATCH_KEYS:
        if baseline.get(key) != current.get(key):
            out.append(Violation(
                "P321",
                f"service workload '{key}' differs: baseline "
                f"{baseline.get(key)!r} vs current {current.get(key)!r}",
                subject="service",
            ))
    b = baseline.get("service", {})
    c = current.get("service", {})
    for mk in budgets.SERVICE_EXACT_METRICS:
        if b.get(mk) != c.get(mk):
            out.append(Violation(
                "P323",
                f"service: exact metric {mk} changed from {b.get(mk)!r} "
                f"to {c.get(mk)!r}",
                subject="service",
            ))
    thr = budgets.PERFGATE_TIMING_THRESHOLD
    for mk in budgets.SERVICE_TIMING_METRICS:
        bv, cv = b.get(mk), c.get(mk)
        if not isinstance(bv, (int, float)) or \
                not isinstance(cv, (int, float)) or bv <= 0:
            continue
        rel = (cv - bv) / bv
        if rel > thr:
            out.append(Violation(
                "P323",
                f"service: {mk} regressed {rel:+.1%} "
                f"({bv:.4f}s -> {cv:.4f}s), threshold +{thr:.0%}",
                subject="service",
            ))
    return out


# ----------------------------------------------------------------------
# Frontier work-efficiency gate (P324 / P325)
# ----------------------------------------------------------------------

def check_frontier_contract(report: dict) -> list[Violation]:
    """Check a fresh ``BENCH_frontier.json`` against the absolute contract.

    ``P324`` when sparse execution's modeled warp instructions on the
    road-network fixture's tail iterations are not at least
    :data:`~repro.analysis.budgets.FRONTIER_MIN_MODEL_SAVINGS` times
    cheaper than the full sweep's, when the run skips fewer than
    :data:`~repro.analysis.budgets.FRONTIER_MIN_SKIP_FRACTION` of its
    shard-sweeps, or when the bench could not certify sparse results
    bit-identical to ``frontier="off"``.  All three are deterministic
    cost-model / equivalence facts, so no baseline and no noise band
    are involved.
    """
    row = report.get("frontier", {})
    out: list[Violation] = []
    if row.get("bit_exact") is not True:
        out.append(Violation(
            "P324",
            "BENCH_frontier.json does not certify sparse results "
            "bit-identical to the full sweep (bit_exact "
            f"{row.get('bit_exact')!r})",
            subject="frontier",
        ))
    savings = row.get("tail_model_savings")
    floor = budgets.FRONTIER_MIN_MODEL_SAVINGS
    if not isinstance(savings, (int, float)):
        out.append(Violation(
            "P324",
            "BENCH_frontier.json carries no frontier.tail_model_savings; "
            "the work-efficiency contract cannot be checked",
            subject="frontier",
        ))
    elif savings < floor:
        out.append(Violation(
            "P324",
            f"sparse tail iterations price only {savings:.2f}x fewer "
            f"modeled warp instructions than the full sweep "
            f"(contract floor {floor:.1f}x)",
            subject="frontier",
        ))
    skip = row.get("skip_fraction")
    skip_floor = budgets.FRONTIER_MIN_SKIP_FRACTION
    if not isinstance(skip, (int, float)) or skip < skip_floor:
        out.append(Violation(
            "P324",
            f"sparse run skipped {skip!r} of its shard-sweeps, below "
            f"the contract floor {skip_floor:.0%}",
            subject="frontier",
        ))
    return out


def check_ranges_contract(report: dict) -> list[Violation]:
    """Check a fresh ``BENCH_ranges.json`` against the absolute contract.

    ``P326`` when the ``narrow="auto"`` run's total modeled load+store
    bytes are not at least
    :data:`~repro.analysis.budgets.RANGES_MIN_BYTE_REDUCTION` below the
    ``narrow="off"`` run's, when no field actually narrowed, or when the
    bench could not certify narrowed results bit-identical to the wide
    run.  All three are deterministic cost-model / equivalence facts, so
    no baseline and no noise band are involved.
    """
    row = report.get("ranges", {})
    out: list[Violation] = []
    if row.get("bit_exact") is not True:
        out.append(Violation(
            "P326",
            "BENCH_ranges.json does not certify narrowed results "
            f"bit-identical to narrow='off' (bit_exact "
            f"{row.get('bit_exact')!r})",
            subject="ranges",
        ))
    if not row.get("narrowed_fields"):
        out.append(Violation(
            "P326",
            "BENCH_ranges.json reports no narrowed fields; the range "
            "certificates proved no narrowing plan on the bench fixture",
            subject="ranges",
        ))
    reduction = row.get("byte_reduction")
    floor = budgets.RANGES_MIN_BYTE_REDUCTION
    if not isinstance(reduction, (int, float)):
        out.append(Violation(
            "P326",
            "BENCH_ranges.json carries no ranges.byte_reduction; the "
            "narrowing contract cannot be checked",
            subject="ranges",
        ))
    elif reduction < floor:
        out.append(Violation(
            "P326",
            f"narrow='auto' reduced modeled bytes by only "
            f"{reduction:.1%}, below the contract floor {floor:.0%}",
            subject="ranges",
        ))
    return out


def compare_ranges_reports(baseline: dict, current: dict) -> list[Violation]:
    """Diff a fresh ranges report against the committed baseline.

    ``P321`` when the workloads are not comparable; ``P327`` when a
    deterministic narrowing metric changed.
    """
    out: list[Violation] = []
    for key in budgets.RANGES_MATCH_KEYS:
        if baseline.get(key) != current.get(key):
            out.append(Violation(
                "P321",
                f"ranges workload '{key}' differs: baseline "
                f"{baseline.get(key)!r} vs current {current.get(key)!r}",
                subject="ranges",
            ))
    b = baseline.get("ranges", {})
    c = current.get("ranges", {})
    for mk in budgets.RANGES_EXACT_METRICS:
        if b.get(mk) != c.get(mk):
            out.append(Violation(
                "P327",
                f"ranges: exact metric {mk} changed from {b.get(mk)!r} "
                f"to {c.get(mk)!r}",
                subject="ranges",
            ))
    return out


def compare_frontier_reports(baseline: dict, current: dict) -> list[Violation]:
    """Diff a fresh frontier report against the committed baseline.

    ``P321`` when the workloads are not comparable; ``P325`` when a
    deterministic metric changed or a wall-clock metric regressed beyond
    the one-sided threshold.  Improvements never fail.
    """
    out: list[Violation] = []
    for key in budgets.FRONTIER_MATCH_KEYS:
        if baseline.get(key) != current.get(key):
            out.append(Violation(
                "P321",
                f"frontier workload '{key}' differs: baseline "
                f"{baseline.get(key)!r} vs current {current.get(key)!r}",
                subject="frontier",
            ))
    b = baseline.get("frontier", {})
    c = current.get("frontier", {})
    for mk in budgets.FRONTIER_EXACT_METRICS:
        if b.get(mk) != c.get(mk):
            out.append(Violation(
                "P325",
                f"frontier: exact metric {mk} changed from {b.get(mk)!r} "
                f"to {c.get(mk)!r}",
                subject="frontier",
            ))
    thr = budgets.PERFGATE_TIMING_THRESHOLD
    for mk in budgets.FRONTIER_TIMING_METRICS:
        bv, cv = b.get(mk), c.get(mk)
        if not isinstance(bv, (int, float)) or \
                not isinstance(cv, (int, float)) or bv <= 0:
            continue
        rel = (cv - bv) / bv
        if rel > thr:
            out.append(Violation(
                "P325",
                f"frontier: {mk} regressed {rel:+.1%} "
                f"({bv:.4f}s -> {cv:.4f}s), threshold +{thr:.0%}",
                subject="frontier",
            ))
    return out


# ----------------------------------------------------------------------
# Multi-device placement gate (P328 / P329)
# ----------------------------------------------------------------------

def check_placement_contract(report: dict) -> list[Violation]:
    """Check a fresh ``BENCH_placement.json`` against the absolute contract.

    ``P328`` when the bench could not certify the N-device run bit-exact
    with single-device, when the per-iteration exchange-byte accounting
    came back zero (no cross-device edge was ever charged), or when the
    modeled multi-device speedup falls below
    :data:`~repro.analysis.budgets.PLACEMENT_MIN_MODEL_SPEEDUP`.  All
    three are deterministic cost-model / equivalence facts, so no
    baseline and no noise band are involved.
    """
    row = report.get("placement", {})
    out: list[Violation] = []
    if row.get("bit_exact") is not True:
        out.append(Violation(
            "P328",
            "BENCH_placement.json does not certify the multi-device run "
            f"bit-identical to single-device (bit_exact "
            f"{row.get('bit_exact')!r})",
            subject="placement",
        ))
    exchange = row.get("exchange_bytes")
    if not isinstance(exchange, int) or exchange <= 0:
        out.append(Violation(
            "P328",
            f"BENCH_placement.json charged {exchange!r} exchange bytes; "
            "a multi-device run over a connected fixture must price a "
            "nonzero bulk-synchronous value exchange",
            subject="placement",
        ))
    speedup = row.get("model_speedup")
    floor = budgets.PLACEMENT_MIN_MODEL_SPEEDUP
    if not isinstance(speedup, (int, float)):
        out.append(Violation(
            "P328",
            "BENCH_placement.json carries no placement.model_speedup; "
            "the placement contract cannot be checked",
            subject="placement",
        ))
    elif speedup < floor:
        out.append(Violation(
            "P328",
            f"multi-device execution models only {speedup:.2f}x the "
            f"single-device time (contract floor {floor:.1f}x)",
            subject="placement",
        ))
    return out


def compare_placement_reports(
    baseline: dict, current: dict
) -> list[Violation]:
    """Diff a fresh placement report against the committed baseline.

    ``P321`` when the workloads are not comparable; ``P329`` when a
    deterministic metric (exchange-byte accounting, modeled times)
    changed or a wall-clock metric regressed beyond the one-sided
    threshold.  Improvements never fail.
    """
    out: list[Violation] = []
    for key in budgets.PLACEMENT_MATCH_KEYS:
        if baseline.get(key) != current.get(key):
            out.append(Violation(
                "P321",
                f"placement workload '{key}' differs: baseline "
                f"{baseline.get(key)!r} vs current {current.get(key)!r}",
                subject="placement",
            ))
    b = baseline.get("placement", {})
    c = current.get("placement", {})
    for mk in budgets.PLACEMENT_EXACT_METRICS:
        if b.get(mk) != c.get(mk):
            out.append(Violation(
                "P329",
                f"placement: exact metric {mk} changed from {b.get(mk)!r} "
                f"to {c.get(mk)!r}",
                subject="placement",
            ))
    thr = budgets.PERFGATE_TIMING_THRESHOLD
    for mk in budgets.PLACEMENT_TIMING_METRICS:
        bv, cv = b.get(mk), c.get(mk)
        if not isinstance(bv, (int, float)) or \
                not isinstance(cv, (int, float)) or bv <= 0:
            continue
        rel = (cv - bv) / bv
        if rel > thr:
            out.append(Violation(
                "P329",
                f"placement: {mk} regressed {rel:+.1%} "
                f"({bv:.4f}s -> {cv:.4f}s), threshold +{thr:.0%}",
                subject="placement",
            ))
    return out
