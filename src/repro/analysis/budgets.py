"""Contracted cost-model values and perf-gate thresholds.

This module pins the *performance contract*: the instruction prices the
cost model (:mod:`repro.frameworks.costs`) is allowed to charge, the
static-audit thresholds used by :mod:`repro.analysis.perf`, and the
relative regression thresholds the benchmark gate applies to
``benchmarks/baselines/perf_smoke.json``.

The split matters: :mod:`repro.frameworks.costs` is *live* code that a
refactor may edit, while :data:`COST_CONTRACT` here is the reviewed
mirror.  ``P310`` fires whenever the two diverge, so a pricing change
must touch both files — one of them inside ``analysis/`` where the
perf-contract reviewer will see it.
"""

from __future__ import annotations

__all__ = [
    "COST_CONTRACT",
    "INSTRUCTION_DRIFT_TOLERANCE",
    "REPLAY_WARN_FRACTION",
    "REPLAY_WARN_MIN_ROWS",
    "STAGE_LOAD_EFFICIENCY_FLOOR",
    "OCCUPANCY_EPSILON",
    "PERFGATE_TIMING_THRESHOLD",
    "PERFGATE_TIMING_METRICS",
    "PERFGATE_EXACT_METRICS",
    "PERFGATE_MATCH_KEYS",
    "SERVICE_MIN_BATCH_SPEEDUP",
    "SERVICE_TIMING_METRICS",
    "SERVICE_EXACT_METRICS",
    "SERVICE_MATCH_KEYS",
    "FRONTIER_MIN_MODEL_SAVINGS",
    "FRONTIER_MIN_SKIP_FRACTION",
    "FRONTIER_TIMING_METRICS",
    "FRONTIER_EXACT_METRICS",
    "FRONTIER_MATCH_KEYS",
    "RANGES_MIN_BYTE_REDUCTION",
    "RANGES_EXACT_METRICS",
    "RANGES_MATCH_KEYS",
    "PLACEMENT_MIN_MODEL_SPEEDUP",
    "PLACEMENT_TIMING_METRICS",
    "PLACEMENT_EXACT_METRICS",
    "PLACEMENT_MATCH_KEYS",
]


#: Contracted mirror of every instruction constant in
#: :mod:`repro.frameworks.costs`.  Keys are attribute names on that
#: module; a live value that differs is a ``P310`` violation.
COST_CONTRACT: dict[str, float] = {
    "INSTR_INIT": 4.0,
    "INSTR_COMPUTE": 12.0,
    "INSTR_UPDATE": 6.0,
    "INSTR_WRITEBACK": 6.0,
    "INSTR_ATOMIC_REPLAY": 1.0,
    "INSTR_GS_WINDOW_SCAN": 4.0,
    "INSTR_VWC_EDGE": 12.0,
    "INSTR_VWC_SISD": 10.0,
    "INSTR_VWC_REDUCE": 4.0,
}

#: Relative tolerance for ``warp_instructions`` in the drift gate
#: (``P312``).  Transaction and lane counters are integral and compared
#: exactly; instruction totals are floats accumulated in a different
#: order on the fast path, so they get a small relative band.
INSTRUCTION_DRIFT_TOLERANCE: float = 0.02

#: ``P305`` fires (warning) when predicted stage-2 atomic replays exceed
#: this fraction of the fully serialized worst case ``rows * (warp-1)``.
REPLAY_WARN_FRACTION: float = 0.9

#: ``P305`` is suppressed on graphs whose stage-2 sweep has fewer warp
#: rows than this — tiny fixtures trivially serialize.
REPLAY_WARN_MIN_ROWS: int = 4

#: ``P306`` fires (warning) when a predicted stage-level load efficiency
#: (bytes requested / bytes transferred) drops below this floor.
STAGE_LOAD_EFFICIENCY_FLOOR: float = 0.25

#: Slack for the CW-vs-GS occupancy comparison (``P301``): CW must be at
#: least GS occupancy minus this epsilon (floating-point guard only; the
#: contract is CW >= GS for consistent representations).
OCCUPANCY_EPSILON: float = 1e-9

#: One-sided relative threshold for the benchmark gate: a timing metric
#: regresses (``P320``) when ``(current - baseline) / baseline`` exceeds
#: this value.  Improvements never fail.
PERFGATE_TIMING_THRESHOLD: float = 0.10

#: Per-engine timing metrics in ``BENCH_perf_smoke.json`` the gate
#: thresholds.  The *minimum* over ``--repeats`` is gated, not the
#: median: wall-clock noise on a shared machine is one-sided, so minima
#: are the stable statistic.  ``cold_cache_s`` is excluded entirely — it
#: measures one non-repeated cold setup and cannot carry a 10% band.
PERFGATE_TIMING_METRICS: tuple[str, ...] = (
    "fast_min_s",
    "reference_min_s",
    "warm_cache_min_s",
)

#: Per-engine metrics that must match the baseline exactly (``P320``):
#: a change here is a behavioural regression, not noise.  Cache hits are
#: compared per warm run (the raw counter scales with ``--repeats``).
PERFGATE_EXACT_METRICS: tuple[str, ...] = (
    "iterations",
    "cache_hits_per_run",
    "cache_misses",
)

#: Run-configuration keys that must match between baseline and current
#: report for the comparison to be meaningful at all (``P321``).
PERFGATE_MATCH_KEYS: tuple[str, ...] = (
    "graph",
    "program",
    "max_iterations",
)

#: Contracted floor on the service layer's batched-vs-sequential modeled
#: throughput ratio (``model_speedup`` in ``BENCH_service.json``).
#: Coalescing K same-graph traversal queries into one multi-source run
#: must stay at least this many times cheaper in modeled device time
#: than running them one at a time; ``P322`` fires below the floor.
#: The ratio is computed from deterministic cost-model output, so it
#: carries no noise band.
SERVICE_MIN_BATCH_SPEEDUP: float = 2.0

#: Wall-clock metrics in ``BENCH_service.json`` the gate thresholds
#: against the committed service baseline (``P323``), minima over
#: ``--repeats`` with the same one-sided
#: :data:`PERFGATE_TIMING_THRESHOLD` band as the smoke gate.
SERVICE_TIMING_METRICS: tuple[str, ...] = (
    "sequential_wall_min_s",
    "batched_wall_min_s",
)

#: ``BENCH_service.json`` metrics that must match the service baseline
#: exactly (``P323``): all are derived from deterministic cost-model
#: output or iteration counts, so any change is behavioural.
SERVICE_EXACT_METRICS: tuple[str, ...] = (
    "iterations",
    "batched_with",
    "sequential_model_ms",
    "batched_model_ms",
    "model_speedup",
)

#: Keys that must match between the service baseline and the current
#: ``BENCH_service.json`` for the comparison to mean anything (``P321``).
SERVICE_MATCH_KEYS: tuple[str, ...] = (
    "graph",
    "program",
    "engine",
    "sources",
    "max_iterations",
)

#: Contracted floor on frontier-mode work efficiency (``P324``): on the
#: road-network fixture's *tail* iterations (after the BFS frontier
#: peaks), ``frontier="sparse"`` must price at least this many times
#: fewer modeled warp instructions than the full sweep.  The ratio is
#: exact cost-model output (skipped shards charge zero), so it carries
#: no noise band — the tail of a road-network traversal is precisely
#: where shard-sweep skipping must pay off.
FRONTIER_MIN_MODEL_SAVINGS: float = 5.0

#: Contracted floor on the fraction of shard-sweeps skipped over the
#: whole road-network BFS run (``P324``).
FRONTIER_MIN_SKIP_FRACTION: float = 0.8

#: Wall-clock metrics in ``BENCH_frontier.json`` the gate thresholds
#: against the committed frontier baseline (``P325``), minima over
#: ``--repeats`` with the usual one-sided
#: :data:`PERFGATE_TIMING_THRESHOLD` band.
FRONTIER_TIMING_METRICS: tuple[str, ...] = (
    "full_wall_min_s",
    "sparse_wall_min_s",
)

#: ``BENCH_frontier.json`` metrics that must match the frontier baseline
#: exactly (``P325``): all derived from deterministic cost-model output,
#: frontier counters, or iteration counts, so any change is behavioural.
FRONTIER_EXACT_METRICS: tuple[str, ...] = (
    "iterations",
    "peak_iteration",
    "edges_processed",
    "shards_skipped",
    "skip_fraction",
    "tail_model_savings",
    "full_model_ms",
    "sparse_model_ms",
    "model_speedup",
)

#: Keys that must match between the frontier baseline and the current
#: ``BENCH_frontier.json`` for the comparison to mean anything
#: (``P321``).
FRONTIER_MATCH_KEYS: tuple[str, ...] = (
    "graph",
    "program",
    "engine",
    "max_iterations",
)

#: Contracted floor on the modeled DRAM byte reduction proven-safe
#: narrowing must deliver on the bench fixture (``P326``): a
#: ``narrow="auto"`` run's total load+store bytes must be at least this
#: fraction below the ``narrow="off"`` run's.  Both totals are exact
#: cost-model output, so the ratio carries no noise band.
RANGES_MIN_BYTE_REDUCTION: float = 0.2

#: ``BENCH_ranges.json`` metrics that must match the ranges baseline
#: exactly (``P327``): all derived from deterministic cost-model output,
#: the narrowing plan, or iteration counts.
RANGES_EXACT_METRICS: tuple[str, ...] = (
    "iterations",
    "bytes_off",
    "bytes_auto",
    "byte_reduction",
    "narrowed_fields",
    "vertex_bytes_off",
    "vertex_bytes_auto",
)

#: Keys that must match between the ranges baseline and the current
#: ``BENCH_ranges.json`` for the comparison to mean anything (``P321``).
RANGES_MATCH_KEYS: tuple[str, ...] = (
    "graph",
    "program",
    "engine",
    "max_iterations",
)

#: Contracted floor on the multi-device modeled speedup (``P328``): on
#: the bench fixture, the N-device run's modeled iteration time (max
#: per-device share + exchange) must be at least this many times below
#: the single-device time.  Both sides are exact cost-model output —
#: the floor is absolute, with no noise band; drift in the exact
#: metrics below is gated separately (``P329``).
PLACEMENT_MIN_MODEL_SPEEDUP: float = 1.3

#: Wall-clock metrics in ``BENCH_placement.json`` the gate thresholds
#: against the committed placement baseline (``P329``), minima over
#: ``--repeats`` with the usual one-sided
#: :data:`PERFGATE_TIMING_THRESHOLD` band.
PLACEMENT_TIMING_METRICS: tuple[str, ...] = (
    "single_wall_min_s",
    "multi_wall_min_s",
)

#: ``BENCH_placement.json`` metrics that must match the placement
#: baseline exactly (``P329``): exchange-byte accounting and the modeled
#: times are deterministic cost-model output, so any change is
#: behavioural, not noise.
PLACEMENT_EXACT_METRICS: tuple[str, ...] = (
    "iterations",
    "devices",
    "exchange_bytes",
    "single_model_ms",
    "multi_model_ms",
    "model_speedup",
)

#: Keys that must match between the placement baseline and the current
#: ``BENCH_placement.json`` for the comparison to mean anything
#: (``P321``).
PLACEMENT_MATCH_KEYS: tuple[str, ...] = (
    "graph",
    "program",
    "engine",
    "devices",
    "max_iterations",
)
