"""Simulated-race detector for the scalar (reference) execution path.

The paper's correctness argument (section 4) rests on two dynamic
disciplines no test previously checked:

1. **Stage discipline** — ``VertexValues`` may only change in stage 3 of
   Figure 5; during stages 1/2 the device functions own a *local* copy and
   every other record (``src_v``, ``src_static``, ``edge``, the current
   value ``v``) is read-only.  Stage-2 updates must go through the declared
   ``reduce_ops`` operator — an undeclared write, or a write that violates
   a declared ``min``/``max`` operator's monotonicity, is exactly the
   update a shared-memory atomic would lose or corrupt on the GPU.
2. **Commutativity/associativity** — shard entries are folded in whatever
   order warps happen to run; ``compute`` must therefore commute.  The
   detector re-runs the same iterations with a permuted edge order and
   diffs the results (bit-exact for integer fields, tolerance-based for
   floating fields, whose reductions legitimately reorder rounding).

Both checks execute the *scalar* device functions with instrumented record
wrappers — a ThreadSanitizer-style shadow of the reference engine — and
report findings as typed :class:`~repro.analysis.violations.Violation`
records.  They are opt-in (``RunConfig(validate="full")`` or
``python -m repro check``) and cost O(|E|) Python per iteration, so run
them on small graphs.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.violations import Violation
from repro.graph.digraph import DiGraph
from repro.graph.shards import GShards
from repro.vertexcentric.program import VertexProgram

__all__ = [
    "stage_discipline_check",
    "order_sensitivity_check",
    "race_check",
    "frontier_discipline_check",
]


class _Tracked(dict):
    """A record wrapper that logs field writes into the detector."""

    def __init__(self, data: dict, role: str, writable: bool, log) -> None:
        super().__init__(data)
        self._role = role
        self._writable = writable
        self._log = log

    def __setitem__(self, key, value) -> None:
        self._log._on_write(self, key, value)
        super().__setitem__(key, value)


class _DisciplineLog:
    """Aggregates stage-discipline findings, deduplicated per rule site."""

    def __init__(self, program: VertexProgram) -> None:
        self.program = program
        self.stage = "init"
        self.violations: list[Violation] = []
        self._seen: set[tuple] = set()

    def _report(self, key: tuple, code: str, message: str) -> None:
        if key in self._seen:
            return
        self._seen.add(key)
        self.violations.append(
            Violation(code, message, subject=self.program.name)
        )

    def _on_write(self, rec: _Tracked, field, value) -> None:
        role, stage = rec._role, self.stage
        if not rec._writable:
            if role in ("static", "edge"):
                self._report(
                    ("R204", role, field, stage),
                    "R204",
                    f"{stage}: device function wrote read-only {role} "
                    f"record field {field!r}",
                )
            else:
                self._report(
                    ("R201", role, field, stage),
                    "R201",
                    f"{stage}: device function wrote VertexValues record "
                    f"({role}) field {field!r} outside stage 3",
                )
            return
        if stage == "stage2-compute":
            ops = self.program.reduce_ops or {}
            if field not in ops:
                self._report(
                    ("R202", field),
                    "R202",
                    f"stage 2 wrote local field {field!r} which bypasses "
                    f"the declared reduce_ops {sorted(ops)}",
                )
                return
            old = rec.get(field)
            op = ops[field]
            try:
                # np.any collapses (K,) subarray fields (the multi-source
                # traversal blocks) as well as plain scalars.
                if op == "min" and bool(np.any(np.asarray(value) > np.asarray(old))):
                    self._report(
                        ("R202-mono", field),
                        "R202",
                        f"stage 2 increased local field {field!r} "
                        f"({old!r} -> {value!r}) despite its declared "
                        f"'min' reducer — the write bypasses the ufunc",
                    )
                elif op == "max" and bool(np.any(np.asarray(value) < np.asarray(old))):
                    self._report(
                        ("R202-mono", field),
                        "R202",
                        f"stage 2 decreased local field {field!r} "
                        f"({old!r} -> {value!r}) despite its declared "
                        f"'max' reducer — the write bypasses the ufunc",
                    )
            except TypeError:  # pragma: no cover - non-comparable values
                pass


def _record(array: np.ndarray, i: int) -> dict:
    return {name: array[name][i] for name in array.dtype.names}


def _store(array: np.ndarray, i: int, rec: dict) -> None:
    for name in array.dtype.names:
        array[name][i] = rec[name]


def stage_discipline_check(
    graph: DiGraph,
    program: VertexProgram,
    *,
    vertices_per_shard: int = 4,
    max_iterations: int = 8,
) -> list[Violation]:
    """Run up to ``max_iterations`` reference iterations with instrumented
    records and report stage-discipline violations (``R201``/``R202``/
    ``R204``).

    The execution mirrors :class:`~repro.frameworks.scalar.ScalarReferenceEngine`
    stage for stage; convergence simply stops the instrumentation early.
    """
    sh = GShards(graph, vertices_per_shard)
    log = _DisciplineLog(program)
    vertex_values = program.initial_values(graph)
    static_all = program.static_values(graph)
    ev = program.edge_values(graph)
    edge_vals = None if ev is None else ev[sh.edge_positions]
    src_value = vertex_values[sh.src_index].copy()
    src_static = None if static_all is None else static_all[sh.src_index]

    for _iteration in range(max_iterations):
        updated_total = 0
        for i in range(sh.num_shards):
            lo, hi = sh.vertex_range(i)
            log.stage = "stage1-init"
            locals_ = []
            for v in range(lo, hi):
                rec = _Tracked(_record(vertex_values, v), "vertex", False, log)
                local = _Tracked(dict(rec), "local", True, log)
                program.init_compute(local, rec)
                locals_.append(local)
            log.stage = "stage2-compute"
            sl = sh.shard_slice(i)
            for e in range(sl.start, sl.stop):
                program.compute(
                    _Tracked(_record(src_value, e), "vertex", False, log),
                    None if src_static is None
                    else _Tracked(_record(src_static, e), "static", False, log),
                    None if edge_vals is None
                    else _Tracked(_record(edge_vals, e), "edge", False, log),
                    locals_[int(sh.dest_index[e]) - lo],
                )
            log.stage = "stage3-update"
            shard_updated = False
            for v in range(lo, hi):
                rec = _Tracked(_record(vertex_values, v), "vertex", False, log)
                local = locals_[v - lo]
                local._writable = True  # stage 3 finalizes the local copy
                log.stage = "stage3-update"
                if program.update_condition(local, rec):
                    _store(vertex_values, v, local)
                    shard_updated = True
                    updated_total += 1
            if shard_updated:
                for _j, start, stop in sh.windows_of(i):
                    for e in range(start, stop):
                        src_value[e] = vertex_values[int(sh.src_index[e])]
        if updated_total == 0:
            break
    return log.violations


def _run_supersteps(
    graph: DiGraph,
    program: VertexProgram,
    edge_order: np.ndarray,
    iterations: int,
) -> np.ndarray:
    """``iterations`` BSP supersteps folding edges in ``edge_order``."""
    n = graph.num_vertices
    values = program.initial_values(graph)
    static_all = program.static_values(graph)
    ev = program.edge_values(graph)
    src = graph.src
    dst = graph.dst
    for _ in range(iterations):
        snapshot = values.copy()
        locals_ = []
        for v in range(n):
            rec = _record(snapshot, v)
            local = dict(rec)
            program.init_compute(local, rec)
            locals_.append(local)
        for e in edge_order:
            program.compute(
                _record(snapshot, int(src[e])),
                None if static_all is None
                else _record(static_all, int(src[e])),
                None if ev is None else _record(ev, int(e)),
                locals_[int(dst[e])],
            )
        updated = 0
        for v in range(n):
            rec = _record(values, v)
            if program.update_condition(locals_[v], rec):
                _store(values, v, locals_[v])
                updated += 1
        if updated == 0:
            break
    return values


def order_sensitivity_check(
    graph: DiGraph,
    program: VertexProgram,
    *,
    iterations: int = 2,
    permutation_seed: int = 0,
    rtol: float = 1e-4,
    atol: float = 1e-5,
) -> list[Violation]:
    """Re-run ``iterations`` supersteps with a permuted edge order and diff
    the results (``R203``).

    Integer vertex fields must match bit-exactly (``min``/``max``/integer
    ``add`` reductions are order-invariant); floating fields are compared
    with ``rtol``/``atol`` because reordering a float ``add`` legitimately
    reorders rounding.  A difference beyond that means ``compute`` is not
    commutative/associative — the property the paper's atomics require.
    """
    m = graph.num_edges
    baseline = _run_supersteps(
        graph, program, np.arange(m, dtype=np.int64), iterations
    )
    rng = np.random.default_rng(permutation_seed)
    permuted = _run_supersteps(
        graph, program, rng.permutation(m).astype(np.int64), iterations
    )
    out: list[Violation] = []
    for name in baseline.dtype.names:
        a, b = baseline[name], permuted[name]
        if a.dtype.kind == "f":
            ok = np.allclose(a, b, rtol=rtol, atol=atol, equal_nan=True)
        else:
            ok = np.array_equal(a, b)
        if not ok:
            with np.errstate(over="ignore"):
                diff = np.abs(a.astype(np.float64) - b.astype(np.float64))
            out.append(Violation(
                "R203",
                f"permuting the edge fold order changed field {name!r} on "
                f"{int((a != b).sum())}/{a.size} vertices "
                f"(max |delta| = {float(np.nanmax(diff)):g} after "
                f"{iterations} iterations) — compute is order-sensitive",
                subject=program.name,
            ))
    return out


def frontier_discipline_check(
    graph: DiGraph,
    program: VertexProgram,
    *,
    vertices_per_shard: int = 4,
    max_iterations: int = 4,
    eager_mark: bool = False,
) -> list[Violation]:
    """Instrumented frontier-gated reference iterations checking the
    ``ShardFrontier`` write discipline (``R205``).

    The frontier contract (see :mod:`repro.frameworks.frontier`) is that
    dirty bits are set from the *genuinely updated* vertex indices at a
    write-back **flush boundary** — never mid-stage, where a later shard
    in the same sweep could observe (and clear) a mark for work that has
    not been written back yet.  This check runs a BSP-disciplined sparse
    sweep with an instrumented frontier that records the phase of every
    ``mark()`` call, and cross-validates the end-of-iteration dirty bitmap
    against :func:`~repro.frameworks.frontier.resume_dirty` rebuilt from
    the updated-vertex mask.

    ``eager_mark=True`` simulates the buggy engine the check exists to
    catch: marking per shard at stage 3, before the write-back flush.
    """
    from repro.frameworks.frontier import (ShardFrontier, resume_dirty,
                                           vertex_influence_csr)

    sh = GShards(graph, vertices_per_shard)
    n = graph.num_vertices
    num_units = sh.num_shards
    indptr, targets = vertex_influence_csr(
        graph.src, graph.dst, n, vertices_per_shard, num_units
    )
    phase = {"value": "init"}
    violations: list[Violation] = []
    seen: set[tuple] = set()

    def report(key: tuple, message: str) -> None:
        if key in seen:
            return
        seen.add(key)
        violations.append(Violation("R205", message, subject=program.name))

    class _InstrumentedFrontier(ShardFrontier):
        __slots__ = ()

        def mark(self, updated_vertices) -> None:
            if phase["value"] != "flush":
                report(
                    ("mark-phase", phase["value"]),
                    f"{phase['value']}: ShardFrontier.mark() called outside "
                    f"a write-back flush boundary",
                )
            super().mark(updated_vertices)

    values = program.initial_values(graph)
    static_all = program.static_values(graph)
    ev = program.edge_values(graph)
    edge_vals = None if ev is None else ev[sh.edge_positions]
    frontier = _InstrumentedFrontier(num_units, vertices_per_shard, indptr, targets)
    flush_pos = np.zeros(num_units, dtype=np.int64)  # BSP: one flush per sweep

    for _iteration in range(max_iterations):
        phase["value"] = "sweep"
        active = frontier.active(0, num_units)
        if not active.size:
            break
        snapshot = values.copy()
        updated: list[int] = []
        for i in active:
            lo, hi = sh.vertex_range(int(i))
            locals_ = []
            for v in range(lo, hi):
                rec = _record(snapshot, v)
                local = dict(rec)
                program.init_compute(local, rec)
                locals_.append(local)
            phase["value"] = "stage2-compute"
            sl = sh.shard_slice(int(i))
            for e in range(sl.start, sl.stop):
                src = int(sh.src_index[e])
                program.compute(
                    _record(snapshot, src),
                    None if static_all is None else _record(static_all, src),
                    None if edge_vals is None else _record(edge_vals, e),
                    locals_[int(sh.dest_index[e]) - lo],
                )
            phase["value"] = "stage3-update"
            shard_updated = []
            for v in range(lo, hi):
                rec = _record(values, v)
                if program.update_condition(locals_[v - lo], rec):
                    _store(values, v, locals_[v - lo])
                    shard_updated.append(v)
            if eager_mark and shard_updated:
                # The simulated bug: per-shard marking before the flush.
                frontier.mark(np.asarray(shard_updated, dtype=np.int64))
            updated.extend(shard_updated)
            phase["value"] = "sweep"
        frontier.clear(active)
        phase["value"] = "flush"
        upd = np.asarray(updated, dtype=np.int64)
        frontier.mark(upd)
        phase["value"] = "post"
        mask = np.zeros(n, dtype=bool)
        mask[upd] = True
        expected = resume_dirty(
            mask, vertices_per_shard, num_units, indptr, targets, flush_pos
        )
        if not np.array_equal(expected, frontier.dirty):
            report(
                ("flush-mismatch",),
                "end-of-iteration dirty bitmap disagrees with the bitmap "
                "rebuilt from the genuinely updated vertex mask — the "
                "flushed unit set does not match the vertices actually "
                "updated",
            )
        if not upd.size:
            break
    return violations


def race_check(
    graph: DiGraph,
    program: VertexProgram,
    *,
    vertices_per_shard: int = 4,
    max_iterations: int = 8,
    order_iterations: int = 2,
    permutation_seed: int = 0,
) -> list[Violation]:
    """Full dynamic check: stage discipline plus order sensitivity."""
    return stage_discipline_check(
        graph,
        program,
        vertices_per_shard=vertices_per_shard,
        max_iterations=max_iterations,
    ) + order_sensitivity_check(
        graph,
        program,
        iterations=order_iterations,
        permutation_seed=permutation_seed,
    )
