"""Static analysis and runtime validation of the paper's correctness contract.

Three layers, each reporting typed :class:`Violation` records:

- :mod:`repro.analysis.lint` — AST-based linter for
  :class:`~repro.vertexcentric.program.VertexProgram` subclasses
  (section 4 / Table 3 programming contract), codes ``L0xx``;
- :mod:`repro.analysis.invariants` — structural validators for CSR,
  G-Shards, and Concatenated Windows (sections 2, 3.1, 3.2), codes
  ``S1xx``;
- :mod:`repro.analysis.races` — simulated-race detector over the reference
  path (stage discipline of Figure 5, commutativity of section 4), codes
  ``R2xx``.

Engine wiring lives in :mod:`repro.analysis.preflight`
(``RunConfig(validate="off"|"structure"|"full")``); deliberately broken
fixtures proving every rule fires are in :mod:`repro.analysis.fixtures`.
The CLI front end is ``python -m repro check``.  See ``docs/analysis.md``.
"""

from repro.analysis.invariants import (
    validate_csr,
    validate_cw,
    validate_gshards,
    validate_structure,
)
from repro.analysis.lint import lint_program
from repro.analysis.preflight import (
    VALIDATE_LEVELS,
    collect_violations,
    preflight,
    publish_violations,
)
from repro.analysis.races import (
    order_sensitivity_check,
    race_check,
    stage_discipline_check,
)
from repro.analysis.violations import CODES, ValidationError, Violation, describe

__all__ = [
    "CODES",
    "VALIDATE_LEVELS",
    "ValidationError",
    "Violation",
    "collect_violations",
    "describe",
    "lint_program",
    "order_sensitivity_check",
    "preflight",
    "publish_violations",
    "race_check",
    "stage_discipline_check",
    "validate_csr",
    "validate_cw",
    "validate_gshards",
    "validate_structure",
]
