"""Static analysis and runtime validation of the paper's correctness contract.

Three layers, each reporting typed :class:`Violation` records:

- :mod:`repro.analysis.lint` — AST-based linter for
  :class:`~repro.vertexcentric.program.VertexProgram` subclasses
  (section 4 / Table 3 programming contract), codes ``L0xx``;
- :mod:`repro.analysis.invariants` — structural validators for CSR,
  G-Shards, and Concatenated Windows (sections 2, 3.1, 3.2), codes
  ``S1xx``;
- :mod:`repro.analysis.races` — simulated-race detector over the reference
  path (stage discipline of Figure 5, commutativity of section 4), codes
  ``R2xx``;
- :mod:`repro.analysis.perf` — static performance auditor, model-vs-
  measured drift gate, and benchmark comparator (the paper's performance
  contract: sections 3.2-3.3, Tables 4-7), codes ``P3xx``, with the
  contracted cost constants mirrored in :mod:`repro.analysis.budgets`;
- :mod:`repro.analysis.certify` — kernel property certifier proving the
  algebraic contracts (identity, commutativity, monotonicity, purity,
  frontier- and async-safety) that the frontier, async, and batching fast
  paths silently assume, codes ``C4xx``, enforced at run time through
  ``RunConfig(certify="off"|"warn"|"enforce")``;
- :mod:`repro.analysis.ranges` — abstract interpretation over the certify
  IR (interval and dtype/width domains) discharging overflow, non-finite,
  termination, and invariant-range certificates, codes ``W5xx``, consumed
  by proven-safe dtype narrowing (``RunConfig(narrow="off"|"auto")``).

Engine wiring lives in :mod:`repro.analysis.preflight`
(``RunConfig(validate="off"|"structure"|"full"|"perf")``); deliberately
broken fixtures proving every rule fires are in
:mod:`repro.analysis.fixtures`.  The CLI front ends are ``python -m repro
check`` and ``python -m repro perfgate``.  See ``docs/analysis.md``.
"""

from repro.analysis.certify import (
    ASYNC_REQUIRED,
    BATCH_REQUIRED,
    CHECK_CODES,
    FRONTIER_REQUIRED,
    PROVED,
    REFUTED,
    UNKNOWN,
    Certificate,
    CheckResult,
    certify_program,
    certify_violations,
    program_fingerprint,
    runtime_gate,
)
from repro.analysis.invariants import (
    validate_csr,
    validate_cw,
    validate_gshards,
    validate_structure,
)
from repro.analysis.lint import lint_program
from repro.analysis.perf import (
    DriftReport,
    StagePrediction,
    audit_cw,
    compare_bench_reports,
    cost_contract_check,
    drift_gate,
    perf_audit,
    static_predictions,
)
from repro.analysis.ranges import (
    RANGE_CHECK_CODES,
    GraphBounds,
    RangesCertificate,
    analyze_ranges,
    narrowing_plan,
    ranges_fingerprint,
    ranges_violations,
)
from repro.analysis.preflight import (
    VALIDATE_LEVELS,
    collect_violations,
    preflight,
    publish_violations,
)
from repro.analysis.races import (
    frontier_discipline_check,
    order_sensitivity_check,
    race_check,
    stage_discipline_check,
)
from repro.analysis.violations import CODES, ValidationError, Violation, describe

__all__ = [
    "ASYNC_REQUIRED",
    "BATCH_REQUIRED",
    "CHECK_CODES",
    "CODES",
    "Certificate",
    "CheckResult",
    "DriftReport",
    "FRONTIER_REQUIRED",
    "GraphBounds",
    "PROVED",
    "RANGE_CHECK_CODES",
    "REFUTED",
    "RangesCertificate",
    "StagePrediction",
    "UNKNOWN",
    "VALIDATE_LEVELS",
    "ValidationError",
    "Violation",
    "analyze_ranges",
    "audit_cw",
    "certify_program",
    "certify_violations",
    "collect_violations",
    "compare_bench_reports",
    "cost_contract_check",
    "describe",
    "drift_gate",
    "frontier_discipline_check",
    "lint_program",
    "narrowing_plan",
    "perf_audit",
    "program_fingerprint",
    "ranges_fingerprint",
    "ranges_violations",
    "static_predictions",
    "order_sensitivity_check",
    "preflight",
    "publish_violations",
    "race_check",
    "stage_discipline_check",
    "validate_csr",
    "validate_cw",
    "validate_gshards",
    "validate_structure",
]
