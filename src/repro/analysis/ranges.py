"""Abstract interpretation over the certify IR: value ranges, overflow,
NaN/Inf, and termination certificates that make dtype narrowing sound.

PR 8's certifier (:mod:`repro.analysis.certify`) proves *algebraic* kernel
contracts; this module adds the *value* layer.  Two cooperating abstract
domains run over the same lowered IR:

interval domain
    Per-field value ranges.  Each :class:`FieldRange` is a finite interval
    ``[lo, hi]`` plus an optional *INF atom* — the ``UINT_INF`` sentinel of
    unsigned traversal fields (or a float infinity) tracked as a separate
    lattice point so that ``min(INF, x) == x`` and mask refinements such as
    ``src != UINT_INF`` are exact.  Ranges are seeded from the concrete
    ``init`` / ``static_values`` / ``edge_values`` arrays (captured as
    :class:`GraphBounds`), then widened through ``messages`` → reduce →
    ``apply`` to a fixpoint.  Reducer monotonicity (C403) closes min/max
    lattices; traversal-style ``src + c`` messages that do not converge
    pointwise get the *additive path bound* ``init_hi + (V - 1) * c_hi``
    (sound for monotone-nonincreasing stores under any schedule, jacobi or
    chaotic, because every stored value is dominated by some simple-path
    sum).  Float add-reduce programs go through shape-matched closed-form
    rules (PageRank mass conservation, heat-kernel convex combination,
    circuit-sim weighted average) or a bounded generic fixpoint, each
    widened by a roundoff slack of ``tol + (D + 8) * 1.2e-7 * scale``.

dtype/width domain
    Exactness of each evaluated op at the declared (and candidate
    narrower) NumPy dtypes: integer ops must fit ``iinfo`` bounds, float
    ops must stay below ``finfo(float32).max``, and the ``UINT_INF``
    sentinel remaps to the narrow dtype's max value (which therefore must
    stay strictly above the finite range).

Four certificates come out, each PROVED / REFUTED / UNKNOWN with the same
seeded falsifier fallback as the C4xx checks (seed ``0xC45A``):

========  ===================  ===========================================
``W501``  overflow-safety      no evaluated op can wrap or saturate its
                               target field dtype given the graph bounds
``W502``  nonfinite-safety     float kernels cannot produce NaN/Inf from
                               finite inputs (division denominators are
                               proven nonzero or rule-bounded)
``W503``  termination-bound    a static max-iteration certificate from
                               finite lattice height, cross-checked
                               against observed sweeps on a tiny fixture
``W504``  invariant-ranges     per-field invariant value ranges (only
                               claimed when W501 holds, and checked
                               against a program-declared ``value_bounds``
                               contract when present)
========  ===================  ===========================================

Certificates cache in the :class:`~repro.cache.RepresentationCache` under
``("ranges", fingerprint)`` where the fingerprint extends
:func:`~repro.analysis.certify.program_fingerprint` with the graph-bound
inputs.  :func:`narrowing_plan` turns a PROVED W501+W504 pair into a
field → narrower-dtype map consumed by ``RunConfig(narrow="auto")``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace as dc_replace

import numpy as np

from repro.analysis import certify as _c
from repro.analysis.certify import (
    PROVED,
    REFUTED,
    UNKNOWN,
    BinOp,
    Call,
    CheckResult,
    Compare,
    Const,
    FieldRead,
    Param,
    UnaryOp,
    Unknown,
    Where,
    program_fingerprint,
)
from repro.analysis.violations import Violation

__all__ = [
    "RANGE_CHECK_CODES",
    "FieldRange",
    "GraphBounds",
    "RangesCertificate",
    "ranges_fingerprint",
    "analyze_ranges",
    "ranges_violations",
    "narrowing_plan",
]

RANGE_CHECK_CODES = ("W501", "W502", "W503", "W504")

#: fixpoint sweeps before the interval iteration gives up (or widens).
_MAX_FIXPOINT_SWEEPS = 8
#: relative float headroom per accumulated term (one float32 ulp, rounded
#: up) used by the roundoff slack that keeps W504 sound for live values.
_F32_ULP = 1.2e-7
_UINT_INF_INT = 0xFFFFFFFF


# ======================================================================
# Graph bounds (the concrete inputs the abstract run is seeded from)
# ======================================================================

def _array_stats(arr: np.ndarray) -> tuple[float, float, bool]:
    """(finite lo, finite hi, has_inf) over a flattened field array."""
    flat = np.asarray(arr).ravel()
    if flat.dtype.kind == "f":
        inf_mask = ~np.isfinite(flat)
    elif flat.dtype == np.uint32:
        inf_mask = flat == np.uint32(_UINT_INF_INT)
    else:
        inf_mask = np.zeros(flat.shape, dtype=bool)
    finite = flat[~inf_mask]
    if finite.size == 0:
        return math.inf, -math.inf, bool(inf_mask.any())
    return (
        float(finite.min()), float(finite.max()), bool(inf_mask.any())
    )


def _fields_stats(arr: np.ndarray | None) -> tuple:
    if arr is None or arr.dtype.names is None:
        return ()
    return tuple(
        (field, _array_stats(arr[field])) for field in arr.dtype.names
    )


@dataclass(frozen=True)
class GraphBounds:
    """Concrete value bounds of one (graph, program) pairing.

    Everything the abstract run assumes about the world: the vertex/edge
    counts, degree bounds, and per-field (lo, hi, has_inf) hulls of the
    initial, static, and edge value arrays.  Hashable — it extends the
    program fingerprint for the ranges-certificate cache key.
    """

    num_vertices: int
    num_edges: int
    max_in_degree: int
    max_out_degree: int
    init: tuple
    static: tuple
    edge: tuple

    @classmethod
    def from_graph(cls, graph, program) -> "GraphBounds":
        in_deg = graph.in_degrees()
        out_deg = graph.out_degrees()
        return cls(
            num_vertices=int(graph.num_vertices),
            num_edges=int(graph.num_edges),
            max_in_degree=int(in_deg.max()) if in_deg.size else 0,
            max_out_degree=int(out_deg.max()) if out_deg.size else 0,
            init=_fields_stats(program.initial_values(graph)),
            static=_fields_stats(program.static_values(graph)),
            edge=_fields_stats(program.edge_values(graph)),
        )

    def key(self) -> tuple:
        return (
            self.num_vertices, self.num_edges,
            self.max_in_degree, self.max_out_degree,
            self.init, self.static, self.edge,
        )


# ======================================================================
# The interval domain
# ======================================================================

@dataclass(frozen=True)
class FieldRange:
    """Finite interval plus an optional INF sentinel atom.

    ``lo > hi`` encodes an empty finite part (the range is then pure INF,
    or bottom when ``has_inf`` is also False).
    """

    lo: float = math.inf
    hi: float = -math.inf
    has_inf: bool = False
    integral: bool = False

    @property
    def finite(self) -> bool:
        return self.lo <= self.hi

    def hull(self, other: "FieldRange") -> "FieldRange":
        return FieldRange(
            min(self.lo, other.lo), max(self.hi, other.hi),
            self.has_inf or other.has_inf,
            self.integral and other.integral,
        )

    def contains(self, other: "FieldRange", *, eps: float = 0.0) -> bool:
        if other.has_inf and not self.has_inf:
            return False
        if not other.finite:
            return True
        scale = max(1.0, abs(self.lo), abs(self.hi))
        return (
            self.finite
            and other.lo >= self.lo - eps * scale
            and other.hi <= self.hi + eps * scale
        )

    def widened(self, slack: float) -> "FieldRange":
        if not self.finite:
            return self
        return FieldRange(
            self.lo - slack, self.hi + slack, self.has_inf, self.integral
        )

    def describe(self) -> str:
        if not self.finite:
            body = "{}" if not self.has_inf else ""
        elif self.integral:
            body = f"[{int(self.lo)}, {int(self.hi)}]"
        else:
            body = f"[{self.lo:.6g}, {self.hi:.6g}]"
        if self.has_inf:
            return (body + " u {INF}") if body else "{INF}"
        return body


def _hull_all(ranges) -> FieldRange | None:
    out = None
    for r in ranges:
        if r is None:
            return None
        out = r if out is None else out.hull(r)
    return out


def _from_stats(stats: tuple[float, float, bool], integral: bool) -> FieldRange:
    lo, hi, has_inf = stats
    return FieldRange(lo, hi, has_inf, integral)


def _min2(a: FieldRange, b: FieldRange) -> FieldRange:
    parts = []
    if a.finite and b.finite:
        parts.append((min(a.lo, b.lo), min(a.hi, b.hi)))
    if a.has_inf and b.finite:
        parts.append((b.lo, b.hi))
    if b.has_inf and a.finite:
        parts.append((a.lo, a.hi))
    lo = min((p[0] for p in parts), default=math.inf)
    hi = max((p[1] for p in parts), default=-math.inf)
    return FieldRange(lo, hi, a.has_inf and b.has_inf,
                      a.integral and b.integral)


def _max2(a: FieldRange, b: FieldRange) -> FieldRange:
    if a.finite and b.finite:
        lo, hi = max(a.lo, b.lo), max(a.hi, b.hi)
    else:
        lo, hi = math.inf, -math.inf
    return FieldRange(lo, hi, a.has_inf or b.has_inf,
                      a.integral and b.integral)


def _const_float(value) -> float | None:
    """A scalar (or 0-d/1-element array) constant as a float, else None."""
    try:
        arr = np.asarray(value)
        if arr.size != 1 or arr.dtype.kind not in "uifb":
            return None
        return float(arr.reshape(())[()])
    except (TypeError, ValueError):
        return None


def _is_inf_const(value) -> bool:
    if isinstance(value, np.uint32) and int(value) == _UINT_INF_INT:
        return True
    if isinstance(value, (float, np.floating)) and math.isinf(value):
        return True
    return False


def _const_range(value) -> FieldRange | None:
    if isinstance(value, (bool, np.bool_)):
        return FieldRange(0.0, 1.0, integral=True)
    if _is_inf_const(value):
        return FieldRange(has_inf=True, integral=isinstance(value, np.uint32))
    if isinstance(value, (int, np.integer)):
        f = float(value)
        return FieldRange(f, f, integral=True)
    if isinstance(value, (float, np.floating)):
        if math.isnan(value):
            return None
        return FieldRange(float(value), float(value))
    if isinstance(value, np.ndarray) and value.dtype.kind in "uif":
        lo, hi, has_inf = _array_stats(value)
        return FieldRange(lo, hi, has_inf, value.dtype.kind in "ui")
    return None


class _Ctx:
    """Side-channel record of everything one evaluation pass observed."""

    __slots__ = ("label", "ops", "unresolved", "div_nodes", "facts")

    def __init__(self, facts: dict | None = None) -> None:
        self.label: np.dtype | None = None  # target-field dtype for ops
        self.ops: list = []  # (dtype | None, op name, lo, hi)
        self.unresolved: list[str] = []
        self.div_nodes: list = []  # IR nodes dividing by a 0-containing range
        self.facts = facts if facts is not None else {}


def _arith(op: str, a: FieldRange, b: FieldRange, node, ctx: _Ctx):
    """Interval arithmetic for one BinOp; records the op for W501."""
    if a.has_inf or b.has_inf:
        # Arithmetic on a value that may be the INF sentinel wraps (uint)
        # or propagates (float); refinement should have stripped it.
        ctx.unresolved.append(
            f"arithmetic {op!r} with a possibly-INF operand"
        )
        return None
    if not (a.finite and b.finite):
        return None
    integral = a.integral and b.integral and op in ("+", "-", "*", "//", "%")
    if op == "+":
        lo, hi = a.lo + b.lo, a.hi + b.hi
    elif op == "-":
        lo, hi = a.lo - b.hi, a.hi - b.lo
    elif op == "*":
        corners = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
        lo, hi = min(corners), max(corners)
    elif op in ("/", "//"):
        if b.lo <= 0.0 <= b.hi:
            ctx.div_nodes.append(node)
            return None
        corners = (a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi)
        lo, hi = min(corners), max(corners)
        if op == "//":
            lo, hi = math.floor(lo), math.floor(hi)
    elif op == "%":
        if b.lo <= 0.0:
            ctx.unresolved.append("modulo with non-positive divisor range")
            return None
        lo, hi = 0.0, b.hi - (1.0 if integral else 0.0)
    else:
        ctx.unresolved.append(f"unsupported arithmetic operator {op!r}")
        return None
    if not (math.isfinite(lo) and math.isfinite(hi)):
        # Float overflow in the abstract arithmetic itself; an interval
        # with infinite endpoints would pass every containment test.
        ctx.unresolved.append(f"arithmetic {op!r} overflows the analysis")
        return None
    ctx.ops.append((ctx.label, op, lo, hi))
    return FieldRange(lo, hi, False, integral)


_NEGATE = {"<": ">=", ">": "<=", "<=": ">", ">=": "<", "==": "!=", "!=": "=="}
_FLIP = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}


def _refine(env: dict, cond, branch: bool):
    """Environment refined by ``cond == branch``; None when infeasible.

    Only simple ``field <op> const`` atoms refine; everything else is a
    sound no-op.  ``&`` distributes on the True branch, ``|`` on False.
    """
    if isinstance(cond, Const):
        truth = bool(np.all(cond.value)) if cond.value is not None else False
        return env if truth == branch else None
    if isinstance(cond, UnaryOp) and cond.op in ("not", "~"):
        return _refine(env, cond.operand, not branch)
    if isinstance(cond, BinOp) and cond.op in ("&", "|"):
        both_on = branch if cond.op == "&" else not branch
        if both_on:
            env = _refine(env, cond.left, branch)
            if env is None:
                return None
            return _refine(env, cond.right, branch)
        return env  # a disjunctive split would need union environments
    if not isinstance(cond, Compare):
        return env
    op, lhs, rhs = cond.op, cond.left, cond.right
    if isinstance(lhs, Const) and isinstance(rhs, FieldRead):
        op, lhs, rhs = _FLIP[op], rhs, lhs
    if not (isinstance(lhs, FieldRead) and isinstance(rhs, Const)):
        return env
    if not branch:
        op = _NEGATE[op]
    key = (lhs.param, lhs.field)
    r = env.get(key)
    if r is None:
        return env
    r2 = _refine_range(r, op, rhs.value)
    if r2 is None:
        return None
    env = dict(env)
    env[key] = r2
    return env


def _refine_range(r: FieldRange, op: str, const) -> FieldRange | None:
    """``r`` restricted to values satisfying ``value <op> const``."""
    if _is_inf_const(const):
        if op == "==":
            return FieldRange(has_inf=True, integral=r.integral) \
                if r.has_inf else None
        if op == "!=":
            r2 = dc_replace(r, has_inf=False)
            return r2 if r2.finite else None
        # The sentinel is the dtype maximum, so e.g. `x < INF` is `x != INF`.
        if op in ("<", "<="):
            r2 = dc_replace(r, has_inf=False) if op == "<" else r
            return r2 if (r2.finite or r2.has_inf) else None
        return r
    try:
        c = float(const)
    except (TypeError, ValueError):
        return r
    step = 1.0 if r.integral else 0.0
    lo, hi, has_inf = r.lo, r.hi, r.has_inf
    if op == "==":
        if r.finite and lo <= c <= hi:
            return FieldRange(c, c, False, r.integral)
        return None
    if op == "!=":
        if r.integral and r.finite:
            if lo == c == hi:
                lo, hi = math.inf, -math.inf
            elif lo == c:
                lo = lo + 1
            elif hi == c:
                hi = hi - 1
        elif r.finite:
            if lo == c:
                lo = math.nextafter(c, math.inf)
            if hi == c:
                hi = math.nextafter(c, -math.inf)
    elif op in ("<", "<="):
        bound = c - step if op == "<" else c
        hi = min(hi, bound)
        has_inf = False  # the sentinel is the dtype maximum
    elif op in (">", ">="):
        bound = c + step if op == ">" else c
        lo = max(lo, bound)
    out = FieldRange(lo, hi, has_inf, r.integral)
    return out if (out.finite or out.has_inf) else None


_MONOTONE_CALLS = {
    "tanh": (math.tanh, -1.0, 1.0),
    "sqrt": (math.sqrt, 0.0, math.inf),
    "exp": (math.exp, 0.0, math.inf),
}


def _eval(node, env: dict, ctx: _Ctx) -> FieldRange | None:
    """Range of one IR expression under ``env``; None when not modeled."""
    fact = ctx.facts.get(id(node))
    if fact is not None:
        return fact
    if isinstance(node, Const):
        r = _const_range(node.value)
        if r is None:
            ctx.unresolved.append(
                f"constant {type(node.value).__name__} has no range"
            )
        return r
    if isinstance(node, FieldRead):
        r = env.get((node.param, node.field))
        if r is None:
            ctx.unresolved.append(
                f"no range for {node.param}[{node.field!r}]"
            )
        return r
    if isinstance(node, BinOp):
        if node.op in ("&", "|"):
            ctx.unresolved.append("bitwise op in value position")
            return None
        a = _eval(node.left, env, ctx)
        b = _eval(node.right, env, ctx)
        if a is None or b is None:
            return None
        return _arith(node.op, a, b, node, ctx)
    if isinstance(node, UnaryOp):
        if node.op == "-":
            r = _eval(node.operand, env, ctx)
            if r is None:
                return None
            if r.has_inf:
                ctx.unresolved.append("negation of a possibly-INF value")
                return None
            return FieldRange(-r.hi, -r.lo, False, r.integral)
        ctx.unresolved.append(f"unary {node.op!r} in value position")
        return None
    if isinstance(node, Compare):
        return FieldRange(0.0, 1.0, integral=True)
    if isinstance(node, Where):
        return _eval_where(node, env, ctx)
    if isinstance(node, Call):
        return _eval_call(node, env, ctx)
    if isinstance(node, Param):
        ctx.unresolved.append(f"whole-record parameter {node.name!r}")
        return None
    if isinstance(node, Unknown):
        ctx.unresolved.append(f"unlowered expression ({node.reason})")
        return None
    ctx.unresolved.append(type(node).__name__)
    return None


def _eval_where(node: Where, env: dict, ctx: _Ctx) -> FieldRange | None:
    arms = []
    for arm, branch in ((node.then, True), (node.other, False)):
        env2 = _refine(env, node.cond, branch)
        if env2 is None:
            continue  # this arm is unreachable under the refinement
        r = _eval(arm, env2, ctx)
        if r is None:
            return None
        arms.append(r)
    if not arms:
        ctx.unresolved.append("no feasible where() arm")
        return None
    return _hull_all(arms)


def _eval_call(node: Call, env: dict, ctx: _Ctx) -> FieldRange | None:
    if node.func == "full":
        # np.full(shape, fill): only the fill value carries a range.
        if len(node.args) >= 2:
            return _eval(node.args[-1], env, ctx)
        ctx.unresolved.append("full() without a fill value")
        return None
    if node.func in ("min", "max"):
        fold = _min2 if node.func == "min" else _max2
        out = None
        for arg in node.args:
            r = _eval(arg, env, ctx)
            if r is None:
                return None
            out = r if out is None else fold(out, r)
        return out
    if node.func == "abs":
        r = _eval(node.args[0], env, ctx) if node.args else None
        if r is None or r.has_inf or not r.finite:
            ctx.unresolved.append("abs of an unmodeled range")
            return None
        lo = 0.0 if r.lo <= 0.0 <= r.hi else min(abs(r.lo), abs(r.hi))
        return FieldRange(lo, max(abs(r.lo), abs(r.hi)), False, r.integral)
    if node.func in ("any", "all"):
        return FieldRange(0.0, 1.0, integral=True)
    if node.func in _MONOTONE_CALLS:
        fn, flo, fhi = _MONOTONE_CALLS[node.func]
        r = _eval(node.args[0], env, ctx) if node.args else None
        if r is None or r.has_inf or not r.finite:
            ctx.unresolved.append(f"{node.func} of an unmodeled range")
            return None
        try:
            lo, hi = fn(r.lo), fn(r.hi)
        except ValueError:
            ctx.unresolved.append(f"{node.func} outside its domain")
            return None
        ctx.ops.append((ctx.label, node.func, lo, hi))
        return FieldRange(max(lo, flo), min(hi, fhi), False, False)
    ctx.unresolved.append(f"call to {node.func!r}")
    return None


# ======================================================================
# Certificate record
# ======================================================================

@dataclass(frozen=True)
class RangesCertificate:
    """W501–W504 verdicts plus the derived per-field invariant ranges."""

    program: str
    fingerprint: str
    checks: tuple
    ranges: tuple  # ((field, (lo, hi, has_inf)), ...) for derived fields
    bounds: tuple  # GraphBounds.key() snapshot the proof is relative to

    def result(self, code: str) -> CheckResult | None:
        for check in self.checks:
            if check.code == code:
                return check
        return None

    def proved(self, code: str) -> bool:
        check = self.result(code)
        return check is not None and check.status == PROVED

    @property
    def failed(self) -> tuple:
        return tuple(
            (c.code, c.status) for c in self.checks if c.status != PROVED
        )

    def field_range(self, field: str) -> tuple | None:
        for name, triple in self.ranges:
            if name == field:
                return triple
        return None

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "fingerprint": self.fingerprint,
            "checks": [c.to_dict() for c in self.checks],
            "ranges": {
                name: {"lo": lo, "hi": hi, "has_inf": has_inf}
                for name, (lo, hi, has_inf) in self.ranges
            },
        }


def ranges_fingerprint(program, bounds: GraphBounds) -> str:
    """Program fingerprint extended with the graph-bound inputs."""
    h = hashlib.blake2b(digest_size=16)
    h.update(program_fingerprint(program).encode("ascii"))
    h.update(repr(bounds.key()).encode("utf-8", "backslashreplace"))
    h.update(repr(sorted(
        (k, tuple(v) if isinstance(v, (tuple, list)) else v)
        for k, v in (getattr(program, "value_bounds", None) or {}).items()
    )).encode("utf-8"))
    return h.hexdigest()


# ======================================================================
# The analysis proper
# ======================================================================

class _Analysis:
    def __init__(self, program, graph, cert, bounds: GraphBounds) -> None:
        self.program = program
        self.graph = graph
        self.cert = cert  # the C4xx certificate (preconditions)
        self.bounds = bounds
        self.low = {
            name: _c._lower_method(program, name) for name in _c._KERNELS
        }
        self.facts: dict[int, FieldRange] = {}
        self.ranges: dict[str, FieldRange] = {}
        self.range_notes: dict[str, str] = {}
        self.derived = False

    # -- environments ---------------------------------------------------
    def _integral(self, field: str) -> bool:
        return _c._field_base_dtype(self.program, field).kind in "ui"

    def _init_ranges(self) -> dict[str, FieldRange]:
        return {
            field: _from_stats(stats, self._integral(field))
            for field, stats in self.bounds.init
        }

    def _msgs_env(self, R: dict[str, FieldRange]) -> dict | None:
        ml = self.low.get("messages")
        if ml is None or ml.opaque or len(ml.params) < 4:
            return None
        p_src, p_static, p_edge, p_dest = ml.params[:4]
        env: dict = {}
        for field, r in R.items():
            env[(p_src, field)] = r
            env[(p_dest, field)] = r
        for field, stats in self.bounds.static:
            env[(p_static, field)] = _from_stats(stats, True)
        for field, stats in self.bounds.edge:
            env[(p_edge, field)] = _from_stats(stats, True)
        # Static/edge integrality actually depends on the declared dtypes.
        for attr, param in (("static_dtype", p_static), ("edge_dtype", p_edge)):
            dt = getattr(self.program, attr, None)
            if dt is None:
                continue
            for field in np.dtype(dt).names or ():
                key = (param, field)
                if key in env:
                    env[key] = dc_replace(
                        env[key],
                        integral=np.dtype(dt)[field].base.kind in "ui",
                    )
        return env

    def _message_ranges(self, R, ctx: _Ctx, *, label: bool = False):
        """Per-return dict field -> FieldRange under mask refinement.

        Returns None when the message structure cannot be modeled.
        """
        rets = _c._messages_returns(self.low["messages"])
        env = self._msgs_env(R)
        if rets is None or env is None:
            return None
        out = []
        for msgs, mask in rets:
            env2 = env
            if not (isinstance(mask, Const) and mask.value is None):
                env2 = _refine(env, mask, True)
                if env2 is None:
                    continue  # statically unreachable return
            evald = {}
            for field, expr in msgs.items():
                if label:
                    ctx.label = _c._field_base_dtype(self.program, field)
                evald[field] = _eval(expr, env2, ctx)
                ctx.label = None
            out.append(evald)
        return out

    def _seed_exprs(self) -> dict[str, object] | None:
        il = self.low.get("init_local")
        if il is None or il.opaque or not il.params or len(il.returns) != 1:
            return None
        current = il.params[0]
        ret = il.returns[0]
        names = self.program.vertex_dtype.names or ()
        if isinstance(ret, Param) and ret.name == current:
            return {f: FieldRead(current, f) for f in names}
        if isinstance(ret, _c._StructVal):
            return {f: ret.read(f) for f in names}
        return None

    def _seed_env(self, R) -> dict | None:
        il = self.low.get("init_local")
        if il is None or not il.params:
            return None
        current = il.params[0]
        return {(current, field): r for field, r in R.items()}

    def _apply_parts(self):
        model = _c._apply_model(self.program, self.low.get("apply"))
        if model is None:
            return None
        final_exprs, updated, local, old = model
        return final_exprs, updated, local, old

    # -- fixpoints ------------------------------------------------------
    def _reduce_identity_range(self, op: str, field: str) -> FieldRange:
        ident = _c._identity_for(
            op, _c._field_base_dtype(self.program, field)
        )
        r = _const_range(
            np.uint32(ident) if (
                not isinstance(ident, float)
                and int(ident) == _UINT_INF_INT
            ) else ident
        )
        return r if r is not None else FieldRange()

    def _is_identity_range(self, r: FieldRange, op: str, field: str) -> bool:
        ident = self._reduce_identity_range(op, field)
        if ident.has_inf:
            return r.has_inf and not r.finite
        return (
            not r.has_inf and r.finite
            and r.lo == r.hi == ident.lo == ident.hi
        )

    def derive(self) -> None:
        ops = set(self.program.reduce_ops.values())
        names = self.program.vertex_dtype.names or ()
        if not ops or not names:
            return
        all_int = all(self._integral(f) for f in self.program.reduce_ops)
        all_float = all(
            _c._field_base_dtype(self.program, f).kind == "f"
            for f in names
        )
        if ops <= {"min", "max"} and all_int \
                and set(names) == set(self.program.reduce_ops):
            self._derive_minmax()
        elif ops == {"add"} and all_float:
            for rule in (self._rule_pr_mass, self._rule_hs_convex,
                         self._rule_cs_ratio, self._derive_add_generic):
                if rule():
                    break
        if self.derived:
            missing = [f for f in names if f not in self.ranges]
            if missing:
                self.derived = False

    def _derive_minmax(self) -> None:
        """Interval fixpoint for pure min/max reducers, with the additive
        path-bound widening for traversal-style ``src + c`` messages."""
        if not (self.cert.proved("C401") and self.cert.proved("C403")):
            return
        dest_dep, _why = _c._dest_dependence(
            self.program, self.low.get("compute"), self.low.get("messages")
        )
        if dest_dep is not False:
            return
        R = self._init_ranges()
        if set(R) != set(self.program.reduce_ops):
            return
        reduce_ops = self.program.reduce_ops
        converged = False
        for _sweep in range(_MAX_FIXPOINT_SWEEPS):
            ctx = _Ctx(self.facts)
            msgrs = self._message_ranges(R, ctx)
            if msgrs is None or ctx.unresolved:
                return
            newR = {}
            for field, op in reduce_ops.items():
                contribs = []
                for evald in msgrs:
                    r = evald.get(field)
                    if r is None and field in evald:
                        return
                    if r is None or self._is_identity_range(r, op, field):
                        continue
                    contribs.append(r)
                m = _hull_all(contribs) if contribs else None
                if m is None:
                    newR[field] = R[field]
                else:
                    fold = _min2 if op == "min" else _max2
                    newR[field] = R[field].hull(fold(R[field], m))
            if all(R[f].contains(newR[f]) for f in R):
                converged = True
                break
            R = newR
        if converged:
            self.ranges = R
            for field in R:
                self.range_notes[field] = "interval fixpoint"
            self.derived = True
            return
        self._widen_additive(R)

    def _widen_additive(self, R: dict[str, FieldRange]) -> None:
        """Path-bound widening: a min-reduced field whose every message is
        ``src[f] + c`` with ``c >= 0`` (possibly masked / Where-guarded by
        the sentinel test) is bounded by ``init_hi + (V - 1) * c_hi``:
        under C403-monotone stores every finite stored value is dominated
        by a simple-path sum, for jacobi and chaotic schedules alike."""
        rets = _c._messages_returns(self.low["messages"])
        env = self._msgs_env(self._init_ranges())
        if rets is None or env is None:
            return
        p_src = self.low["messages"].params[0]
        init = self._init_ranges()
        out: dict[str, FieldRange] = {}
        for field, op in self.program.reduce_ops.items():
            if op != "min":
                return
            c_hi = 0.0
            for msgs, _mask in rets:
                expr = msgs.get(field)
                if expr is None:
                    continue
                r_id = _Ctx(self.facts)
                const_r = _eval(expr, env, r_id) if isinstance(expr, (Const, Call)) else None
                if const_r is not None and \
                        self._is_identity_range(const_r, op, field):
                    continue  # identity-synthesizing path (retired columns)
                cr = self._match_additive(expr, p_src, field, env)
                if cr is None:
                    return
                c_hi = max(c_hi, cr.hi)
            seed = init[field]
            if not seed.finite:
                return
            V = self.bounds.num_vertices
            out[field] = FieldRange(
                seed.lo, seed.hi + (V - 1) * c_hi, seed.has_inf,
                seed.integral,
            )
        self.ranges = out
        for field in out:
            self.range_notes[field] = (
                "additive path bound init_hi + (V-1)*c_hi under C403 "
                "monotone stores (schedule-independent)"
            )
        self.derived = True

    def _match_additive(self, expr, p_src: str, field: str, env):
        """The constant-increment range of a ``src[f] + c`` message."""
        op = self.program.reduce_ops[field]
        while isinstance(expr, Where):
            picked = None
            for arm in (expr.then, expr.other):
                if isinstance(arm, Const):
                    r = _const_range(arm.value)
                    if r is not None and self._is_identity_range(r, op, field):
                        continue
                picked = arm if picked is None else picked
            other_arms = [a for a in (expr.then, expr.other) if a is not picked]
            if picked is None or not all(
                isinstance(a, Const) and (
                    (r := _const_range(a.value)) is not None
                    and self._is_identity_range(r, op, field)
                )
                for a in other_arms
            ):
                return None
            expr = picked
        if not (isinstance(expr, BinOp) and expr.op == "+"):
            return None
        acc = FieldRead(p_src, field)
        if expr.left == acc:
            cexpr = expr.right
        elif expr.right == acc:
            cexpr = expr.left
        else:
            return None
        ml = self.low["messages"]
        p_dest = ml.params[3] if len(ml.params) >= 4 else None
        for bad in (p_src, p_dest):
            if bad is not None and _c._reads_param(cexpr, bad):
                return None
        ctx = _Ctx(self.facts)
        cr = _eval(cexpr, env, ctx)
        if cr is None or ctx.unresolved or cr.has_inf or not cr.finite:
            return None
        if cr.lo < 0.0:
            return None
        return cr

    # -- float add-reduce -----------------------------------------------
    def _float_slack(self, r: FieldRange) -> float:
        tol = float(getattr(self.program, "tolerance", 0.0) or 0.0)
        scale = max(1.0, abs(r.lo), abs(r.hi)) if r.finite else 1.0
        return tol + (self.bounds.max_in_degree + 8) * _F32_ULP * scale

    def _finish_float(self, ranges: dict[str, FieldRange], note: str) -> bool:
        self.ranges = {
            f: r.widened(self._float_slack(r)) for f, r in ranges.items()
        }
        for field in self.ranges:
            self.range_notes[field] = note
        self.derived = True
        return True

    def _single_return(self):
        rets = _c._messages_returns(self.low.get("messages"))
        if rets is None or len(rets) != 1:
            return None
        return rets[0]

    def _rule_pr_mass(self) -> bool:
        """PageRank-shaped mass conservation: ``msg = src[f] / max(deg, 1)``
        over concrete out-degrees with an affine damped apply keeps the
        total mass bounded, so ``hi = a + b * S_max + tol``."""
        reduce_ops = self.program.reduce_ops
        if len(reduce_ops) != 1:
            return False
        (field, op), = reduce_ops.items()
        names = self.program.vertex_dtype.names or ()
        tol = float(getattr(self.program, "tolerance", 0.0) or 0.0)
        if op != "add" or tuple(names) != (field,) or tol <= 0.0:
            return False
        ret = self._single_return()
        if ret is None:
            return False
        msgs, mask = ret
        ml = self.low["messages"]
        p_src, p_static = ml.params[0], ml.params[1]
        expr = msgs.get(field)
        if not (isinstance(expr, BinOp) and expr.op == "/"
                and expr.left == FieldRead(p_src, field)):
            return False
        denom = expr.right
        if not (isinstance(denom, Call) and denom.func == "max"
                and len(denom.args) == 2):
            return False
        deg_reads = [a for a in denom.args if isinstance(a, FieldRead)
                     and a.param == p_static]
        ones = [a for a in denom.args if isinstance(a, Const)
                and not _c._has_unknown(a)
                and _const_float(a.value) == 1.0]
        if len(deg_reads) != 1 or len(ones) != 1:
            return False
        deg_field = deg_reads[0].field
        if not (isinstance(mask, Compare) and mask.op == "!="
                and FieldRead(p_static, deg_field) in (mask.left, mask.right)):
            return False
        statics = self.program.static_values(self.graph)
        if statics is None or not np.array_equal(
            np.asarray(statics[deg_field], dtype=np.int64),
            self.graph.out_degrees(),
        ):
            return False
        seeds = self._seed_exprs()
        if seeds is None or seeds.get(field) != Const(0.0):
            return False
        parts = self._apply_parts()
        if parts is None:
            return False
        final_exprs, _updated, local, _old = parts
        affine = self._match_affine(final_exprs.get(field), local, field)
        if affine is None:
            return False
        a, b = affine
        if not (0.0 < b < 1.0 and a - tol > 0.0):
            return False
        init = np.asarray(
            self.program.initial_values(self.graph)[field], dtype=np.float64
        )
        if init.min() < 0.0:
            return False
        V = self.bounds.num_vertices
        s0 = float(init.sum())
        s_max = max(s0, (a + tol) * V / (1.0 - b))
        hi = max(float(init.max()), a + b * s_max + tol)
        lo = min(float(init.min()), a - tol)
        return self._finish_float(
            {field: FieldRange(lo, hi)},
            f"mass-conservation bound (S_max={s_max:.6g})",
        )

    @staticmethod
    def _match_affine(expr, local: str, field: str):
        """``a + b * local[field]`` with constant a, b — returns (a, b)."""
        if not (isinstance(expr, BinOp) and expr.op == "+"):
            return None
        for const_side, lin_side in ((expr.left, expr.right),
                                     (expr.right, expr.left)):
            if not isinstance(const_side, Const):
                continue
            try:
                a = float(const_side.value)
            except (TypeError, ValueError):
                continue
            if not (isinstance(lin_side, BinOp) and lin_side.op == "*"):
                continue
            acc = FieldRead(local, field)
            for x, y in ((lin_side.left, lin_side.right),
                         (lin_side.right, lin_side.left)):
                if x == acc and isinstance(y, Const):
                    try:
                        return a, float(y.value)
                    except (TypeError, ValueError):
                        return None
        return None

    def _rule_hs_convex(self) -> bool:
        """Heat-kernel shape: ``msg = (src[b] - dest[b]) * edge[c]`` with
        concrete nonnegative coefficients whose per-destination sums stay
        <= 1 make every update a convex combination of current values, so
        both fields stay inside the initial hull."""
        reduce_ops = self.program.reduce_ops
        names = tuple(self.program.vertex_dtype.names or ())
        if len(reduce_ops) != 1 or len(names) != 2:
            return False
        (af, op), = reduce_ops.items()
        if op != "add":
            return False
        bf = next(f for f in names if f != af)
        ret = self._single_return()
        if ret is None:
            return False
        msgs, mask = ret
        if not (isinstance(mask, Const) and mask.value is None):
            return False
        ml = self.low["messages"]
        p_src, p_edge, p_dest = ml.params[0], ml.params[2], ml.params[3]
        expr = msgs.get(af)
        if not (isinstance(expr, BinOp) and expr.op == "*"):
            return False
        diff = edge_read = None
        for x, y in ((expr.left, expr.right), (expr.right, expr.left)):
            if (isinstance(x, BinOp) and x.op == "-"
                    and x.left == FieldRead(p_src, bf)
                    and x.right == FieldRead(p_dest, bf)
                    and isinstance(y, FieldRead) and y.param == p_edge):
                diff, edge_read = x, y
        if diff is None:
            return False
        edges = self.program.edge_values(self.graph)
        if edges is None:
            return False
        coeff = np.asarray(edges[edge_read.field], dtype=np.float64).ravel()
        if coeff.size != self.graph.num_edges or coeff.min() < 0.0:
            return False
        sums = np.zeros(self.graph.num_vertices, dtype=np.float64)
        np.add.at(sums, self.graph.dst, coeff)
        if sums.max(initial=0.0) > 1.0 + 1e-9:
            return False
        seeds = self._seed_exprs()
        il = self.low.get("init_local")
        if seeds is None or il is None:
            return False
        current = il.params[0]
        if seeds.get(af) != FieldRead(current, bf) \
                or seeds.get(bf) != FieldRead(current, bf):
            return False
        parts = self._apply_parts()
        if parts is None:
            return False
        final_exprs, _updated, local, _old = parts
        if final_exprs.get(af) != FieldRead(local, af) \
                or final_exprs.get(bf) != FieldRead(local, af):
            return False
        stats = dict(self.bounds.init)
        hull = _from_stats(stats[af], False).hull(_from_stats(stats[bf], False))
        if hull.has_inf or not hull.finite:
            return False
        return self._finish_float(
            {af: hull, bf: hull},
            "convex-combination bound (per-dest coefficient sums <= 1)",
        )

    def _rule_cs_ratio(self) -> bool:
        """Circuit-sim shape: ``msgs = {v: src[v] * g, gsum: g}`` with
        concrete nonnegative conductances and a guarded ratio apply —
        the ratio is a weighted average of source values, so the stored
        field stays inside ``hull(init, 0)``."""
        reduce_ops = self.program.reduce_ops
        names = tuple(self.program.vertex_dtype.names or ())
        if len(reduce_ops) != 2 or set(names) != set(reduce_ops):
            return False
        if set(reduce_ops.values()) != {"add"}:
            return False
        ret = self._single_return()
        if ret is None:
            return False
        msgs, mask = ret
        if not (isinstance(mask, Const) and mask.value is None):
            return False
        ml = self.low["messages"]
        p_src, p_edge = ml.params[0], ml.params[2]
        vf = gf = weight = None
        for f1 in names:
            w = msgs.get(f1)
            if isinstance(w, FieldRead) and w.param == p_edge:
                gf, weight = f1, w
        if gf is None:
            return False
        vf = next(f for f in names if f != gf)
        prod = msgs.get(vf)
        if not (isinstance(prod, BinOp) and prod.op == "*" and {
            prod.left, prod.right
        } == {FieldRead(p_src, vf), weight}):
            return False
        edges = self.program.edge_values(self.graph)
        if edges is None:
            return False
        g = np.asarray(edges[weight.field], dtype=np.float64).ravel()
        if g.size != self.graph.num_edges or g.min() < 0.0:
            return False
        seeds = self._seed_exprs()
        if seeds is None or seeds.get(vf) != Const(0.0) \
                or seeds.get(gf) != Const(0.0):
            return False
        parts = self._apply_parts()
        if parts is None:
            return False
        final_exprs, _updated, local, _old = parts
        final_g = final_exprs.get(gf)
        if not (isinstance(final_g, Const)
                and _const_float(final_g.value) == 0.0):
            return False
        final_v = final_exprs.get(vf)
        if not self._cs_ratio_shape(final_v, local, vf, gf):
            return False
        stats = dict(self.bounds.init)
        zero = FieldRange(0.0, 0.0)
        rv = _from_stats(stats[vf], False).hull(zero)
        rg = _from_stats(stats[gf], False).hull(zero)
        if rv.has_inf or rg.has_inf or not (rv.finite and rg.finite):
            return False
        rv = rv.widened(self._float_slack(rv))
        rg = rg.widened(self._float_slack(rg))
        # The guarded ratio is a weighted average of source values: teach
        # the evaluator its true range so W501/W502 never see the division.
        self.facts[id(final_v)] = rv
        self.ranges = {vf: rv, gf: rg}
        self.range_notes[vf] = "weighted-average (ratio) bound"
        self.range_notes[gf] = "guarded-reset bound hull(init, 0)"
        self.derived = True
        return True

    @staticmethod
    def _cs_ratio_shape(expr, local: str, vf: str, gf: str) -> bool:
        """``where(local[gf] != 0, local[vf] / <guarded gf>, 0)``."""
        acc_g = FieldRead(local, gf)

        def _is_nonzero_test(cond) -> bool:
            return (isinstance(cond, Compare) and cond.op == "!="
                    and acc_g in (cond.left, cond.right)
                    and any(isinstance(s, Const)
                            and _const_float(s.value) == 0.0
                            for s in (cond.left, cond.right)))

        if not (isinstance(expr, Where) and _is_nonzero_test(expr.cond)):
            return False
        other_ok = isinstance(expr.other, Const)
        ratio = expr.then
        if not (isinstance(ratio, BinOp) and ratio.op == "/"
                and ratio.left == FieldRead(local, vf)):
            return False
        denom = ratio.right
        if denom == acc_g:
            return other_ok
        if isinstance(denom, Where) and _is_nonzero_test(denom.cond) \
                and denom.then == acc_g and isinstance(denom.other, Const):
            try:
                guard = float(denom.other.value)
            except (TypeError, ValueError):
                return False
            return other_ok and guard > 0.0
        return False

    def _derive_add_generic(self) -> bool:
        """Bounded fixpoint for float add-reduce programs whose apply maps
        the accumulator through range-contracting ops (e.g. ``tanh``)."""
        parts = self._apply_parts()
        seeds = self._seed_exprs()
        if parts is None or seeds is None:
            return False
        final_exprs, _updated, local, old = parts
        D = max(self.bounds.max_in_degree, 1)
        R = self._init_ranges()
        names = self.program.vertex_dtype.names or ()
        if any(not R[f].finite or R[f].has_inf for f in names):
            return False
        for _sweep in range(_MAX_FIXPOINT_SWEEPS):
            ctx = _Ctx(self.facts)
            A = self._accumulate(R, seeds, ctx)
            if A is None or ctx.unresolved or ctx.div_nodes:
                return False
            env = {(local, f): r for f, r in A.items()}
            env.update({(old, f): r for f, r in R.items()})
            newR = {}
            for field in names:
                fr = _eval(final_exprs[field], env, ctx)
                if fr is None or fr.has_inf or not fr.finite:
                    return False
                newR[field] = R[field].hull(fr)
            if ctx.unresolved or ctx.div_nodes:
                return False
            if all(R[f].contains(newR[f], eps=1e-12) for f in names):
                return self._finish_float(newR, "generic add fixpoint")
            R = newR
        return False

    def _accumulate(self, R, seeds, ctx: _Ctx):
        """Accumulator ranges after folding D in-messages onto the seed."""
        msgrs = self._message_ranges(R, ctx)
        seed_env = self._seed_env(R)
        if msgrs is None or seed_env is None:
            return None
        D = max(self.bounds.max_in_degree, 1)
        names = self.program.vertex_dtype.names or ()
        A = {}
        for field in names:
            sr = _eval(seeds[field], seed_env, ctx)
            if sr is None or sr.has_inf or not sr.finite:
                return None
            op = self.program.reduce_ops.get(field)
            contribs = [e[field] for e in msgrs if field in e]
            if op is None or not contribs:
                A[field] = sr
                continue
            if any(c is None for c in contribs):
                return None
            m = _hull_all(contribs)
            if op == "add":
                if m.has_inf or not m.finite:
                    return None
                A[field] = FieldRange(
                    sr.lo + D * min(0.0, m.lo), sr.hi + D * max(0.0, m.hi),
                    False, False,
                )
            else:
                fold = _min2 if op == "min" else _max2
                # A vertex with no in-messages keeps the seed, so the
                # accumulator range is the hull of both outcomes.
                A[field] = sr.hull(fold(sr, m))
        return A

    # -- W checks -------------------------------------------------------
    def check_overflow(self) -> CheckResult:
        """W501 — no evaluated op can wrap or saturate its field dtype."""
        code = "W501"
        if not self.derived:
            return CheckResult(
                code, UNKNOWN, "static",
                "no invariant ranges derived to evaluate ops under",
            )
        ctx = _Ctx(self.facts)
        if self._message_ranges(self.ranges, ctx, label=True) is None:
            return CheckResult(
                code, UNKNOWN, "static", "messages not modelable"
            )
        seeds = self._seed_exprs()
        parts = self._apply_parts()
        if seeds is not None and parts is not None:
            A = self._accumulate(self.ranges, seeds, ctx)
            if A is not None:
                for field, r in A.items():
                    if self.program.reduce_ops.get(field) == "add":
                        ctx.label = _c._field_base_dtype(self.program, field)
                        ctx.ops.append((ctx.label, "accumulate", r.lo, r.hi))
                final_exprs, _updated, local, old = parts
                env = {(local, f): r for f, r in A.items()}
                env.update({(old, f): r for f, r in self.ranges.items()})
                for field, expr in final_exprs.items():
                    ctx.label = _c._field_base_dtype(self.program, field)
                    _eval(expr, env, ctx)
                ctx.label = None
        if ctx.div_nodes:
            return CheckResult(
                code, UNKNOWN, "static",
                "division with a possibly-zero denominator range",
            )
        if ctx.unresolved:
            return CheckResult(
                code, UNKNOWN, "static",
                f"unmodeled expression: {ctx.unresolved[0]}",
            )
        checked = 0
        for dtype, op, lo, hi in ctx.ops:
            if dtype is None:
                continue
            checked += 1
            if dtype.kind in "ui":
                info = np.iinfo(dtype)
                dlo, dhi = float(info.min), float(info.max)
            else:
                info = np.finfo(dtype if dtype.kind == "f" else np.float32)
                dlo, dhi = float(-info.max), float(info.max)
            if lo > dhi or hi < dlo:
                return CheckResult(
                    code, REFUTED, "static",
                    f"op {op!r} range [{lo:.6g}, {hi:.6g}] lies entirely "
                    f"outside {dtype} ([{dlo:.6g}, {dhi:.6g}]): every "
                    "executed instance wraps",
                )
            if lo < dlo or hi > dhi:
                return CheckResult(
                    code, UNKNOWN, "static",
                    f"op {op!r} range [{lo:.6g}, {hi:.6g}] may exceed "
                    f"{dtype}",
                )
        return CheckResult(
            code, PROVED, "static",
            f"{checked} evaluated op(s) stay within their target dtypes "
            "(masked sentinel lanes excluded as unobservable)",
        )

    def check_nonfinite(self, w501: CheckResult) -> CheckResult:
        """W502 — float kernels cannot produce NaN/Inf from finite input."""
        code = "W502"
        program = self.program
        float_fields = []
        for attr in ("vertex_dtype", "static_dtype", "edge_dtype"):
            dt = getattr(program, attr, None)
            if dt is None:
                continue
            dt = np.dtype(dt)
            float_fields += [
                f for f in dt.names or () if dt[f].base.kind == "f"
            ]
        if not float_fields:
            return CheckResult(
                code, PROVED, "static",
                "integer-only program: no op can produce a non-finite value",
            )
        ctx = _Ctx(self.facts)
        if not self.derived:
            return CheckResult(
                code, UNKNOWN, "static",
                "no invariant ranges derived to bound float ops under",
            )
        self._message_ranges(self.ranges, ctx)
        seeds = self._seed_exprs()
        parts = self._apply_parts()
        if seeds is not None and parts is not None:
            A = self._accumulate(self.ranges, seeds, ctx)
            final_exprs, _updated, local, old = parts
            if A is not None:
                env = {(local, f): r for f, r in A.items()}
                env.update({(old, f): r for f, r in self.ranges.items()})
                for expr in final_exprs.values():
                    _eval(expr, env, ctx)
        if ctx.div_nodes:
            return CheckResult(
                code, UNKNOWN, "static",
                "division with a possibly-zero denominator range",
            )
        if ctx.unresolved:
            return CheckResult(
                code, UNKNOWN, "static",
                f"unmodeled expression: {ctx.unresolved[0]}",
            )
        if w501.status == REFUTED:
            return CheckResult(
                code, UNKNOWN, "static",
                "overflow refuted (W501): float exactness not claimable",
            )
        return CheckResult(
            code, PROVED, "static",
            "every division denominator is bounded away from zero and all "
            "op ranges are finite",
        )

    def check_termination(self) -> CheckResult:
        """W503 — static max-iteration bound from finite lattice height."""
        code = "W503"
        program = self.program
        V = self.bounds.num_vertices
        upd = self.low.get("update_condition")
        if upd is not None and not upd.opaque and len(upd.returns) == 1:
            ret = upd.returns[0]
            if isinstance(ret, Const) and bool(ret.value):
                return CheckResult(
                    code, REFUTED, "static",
                    "update_condition is constant-true: every sweep claims "
                    "an update, so the run never quiesces",
                )
        ops = set(program.reduce_ops.values())
        tol = float(getattr(program, "tolerance", 0.0) or 0.0)
        bound_fn = None
        why = ""
        if ops and ops <= {"min", "max"} and self.cert.proved("C403"):
            dest_dep, _ = _c._dest_dependence(
                program, self.low.get("compute"), self.low.get("messages")
            )
            if dest_dep is False:
                bound_fn = lambda n: n + 1  # noqa: E731
                why = (
                    "monotone min/max lattice: every improvement follows a "
                    "simple path, so V sweeps reach the fixpoint and one "
                    "more detects it"
                )
        if bound_fn is None and ops == {"add"} and tol > 0.0 and self.derived:
            spans = [
                r.hi - r.lo for r in self.ranges.values()
                if r.finite and not r.has_inf
            ]
            if spans and all(math.isfinite(s) for s in spans):
                height = max(1, math.ceil(max(spans) / tol))
                bound_fn = lambda n, h=height: n * h + 1  # noqa: E731
                why = (
                    "tolerance-quantized value lattice over the proven "
                    "W504 ranges (assumes the relaxation does not cycle "
                    "across quanta, the R203 contract)"
                )
        if bound_fn is None:
            return CheckResult(
                code, UNKNOWN, "static",
                "no finite lattice height established for this reducer",
            )
        bound = bound_fn(V)
        ok, note = self._cross_check_bound(bound_fn)
        if ok is False:
            return CheckResult(code, REFUTED, "static", note)
        return CheckResult(
            code, PROVED, "static",
            f"max {bound} iterations on this graph; {why}; {note}",
        )

    def _cross_check_bound(self, bound_fn):
        """Drive the scalar kernels on the tiny falsifier fixture and
        compare observed sweeps against the bound recomputed for it."""
        try:
            graph, values, statics, edges, indptr, order = \
                _c._tiny_setup(self.program)
        except Exception as exc:
            return None, f"cross-check skipped ({exc!r})"
        tiny_bound = bound_fn(graph.num_vertices)
        budget = min(tiny_bound, _c._FALSIFY_MAX_SWEEPS)
        observed = None
        with np.errstate(all="ignore"):
            for sweep in range(budget):
                if _c._scalar_sweep(
                    self.program, graph, values, statics, edges, indptr,
                    order, jacobi=True,
                ) == 0:
                    observed = sweep + 1
                    break
        if observed is not None:
            return True, (
                f"cross-check: observed {observed} sweep(s) on a "
                f"{graph.num_vertices}-vertex fixture, within its bound "
                f"{tiny_bound}"
            )
        if tiny_bound <= _c._FALSIFY_MAX_SWEEPS:
            return False, (
                f"cross-check refuted the bound: no fixpoint within "
                f"{tiny_bound} sweeps on a {graph.num_vertices}-vertex "
                "fixture"
            )
        return None, "cross-check inconclusive (bound exceeds fixture budget)"

    def check_invariants(self, w501: CheckResult) -> CheckResult:
        """W504 — per-field invariant ranges, honoring ``value_bounds``."""
        code = "W504"
        declared = getattr(self.program, "value_bounds", None) or {}
        # Concrete initial values escaping the declared contract is a real
        # counterexample regardless of what the abstract run derived.
        init = dict(self.bounds.init)
        for field, (dlo, dhi) in declared.items():
            stats = init.get(field)
            if stats is None:
                continue
            lo, hi, _has_inf = stats
            if lo <= hi and (lo < float(dlo) or hi > float(dhi)):
                return CheckResult(
                    code, REFUTED, "static",
                    f"initial values of {field!r} span [{lo:.6g}, "
                    f"{hi:.6g}], escaping the declared value_bounds "
                    f"[{float(dlo):.6g}, {float(dhi):.6g}]",
                )
        if not self.derived:
            return CheckResult(
                code, UNKNOWN, "static",
                "no closure rule matched this program's kernel shape",
            )
        if w501.status != PROVED:
            return CheckResult(
                code, UNKNOWN, "static",
                "ranges unsound under possible overflow (W501 not PROVED)",
            )
        for field, (dlo, dhi) in declared.items():
            r = self.ranges.get(field)
            if r is None:
                continue
            if r.finite and (r.lo < float(dlo) or r.hi > float(dhi)):
                return CheckResult(
                    code, UNKNOWN, "static",
                    f"derived range {r.describe()} for {field!r} does not "
                    "fit the declared value_bounds (over-approximation or "
                    "a real escape)",
                )
        detail = "; ".join(
            f"{field} in {r.describe()} ({self.range_notes.get(field, '?')})"
            for field, r in sorted(self.ranges.items())
        )
        return CheckResult(code, PROVED, "static", detail)

    def ranges_tuple(self) -> tuple:
        return tuple(
            (field, (r.lo, r.hi, r.has_inf))
            for field, r in sorted(self.ranges.items())
        )


# ======================================================================
# Falsifiers (UNKNOWN fallback; REFUTE or stay UNKNOWN, never prove)
# ======================================================================

def _observe_sweeps(program, *, track_nonfinite: bool = False):
    """Run the scalar kernels on the tiny fixture, recording per-field
    observed hulls; returns (hulls, saw_nonfinite, quiesced)."""
    graph, values, statics, edges, indptr, order = _c._tiny_setup(program)
    hulls: dict[str, FieldRange] = {}
    saw_nonfinite = False
    quiesced = False

    def record() -> bool:
        nonlocal saw_nonfinite
        bad = False
        for field in values.dtype.names or ():
            integral = values[field].dtype.kind in "ui"
            stats = _array_stats(values[field])
            r = _from_stats(stats, integral)
            hulls[field] = r if field not in hulls else hulls[field].hull(r)
            if track_nonfinite and values[field].dtype.kind == "f":
                arr = values[field]
                if not np.isfinite(arr).all():
                    bad = True
        return bad

    # The falsifier exists to provoke exactly the overflows and zero
    # divisions the static pass could not rule out — their RuntimeWarnings
    # are the expected signal, not noise worth surfacing.
    with np.errstate(all="ignore"):
        saw_nonfinite |= record()
        for _sweep in range(_c._FALSIFY_MAX_SWEEPS):
            updates = _c._scalar_sweep(
                program, graph, values, statics, edges, indptr, order,
                jacobi=True,
            )
            saw_nonfinite |= record()
            if updates == 0:
                quiesced = True
                break
    return hulls, saw_nonfinite, quiesced


def _describe_hulls(hulls: dict) -> str:
    return ", ".join(
        f"{field} in {r.describe()}" for field, r in sorted(hulls.items())
    )


def _falsify_ranges(code: str, program) -> tuple[str, str]:
    rng = np.random.default_rng(_c._FALSIFY_SEED)
    del rng  # the sweep fixture is already deterministic; kept for parity
    try:
        if code == "W501":
            hulls, _, _ = _observe_sweeps(program)
            return UNKNOWN, (
                "falsifier cannot observe wraparound post-hoc; observed "
                f"hull {_describe_hulls(hulls)}"
            )
        if code == "W502":
            _, saw_nonfinite, _ = _observe_sweeps(
                program, track_nonfinite=True
            )
            if saw_nonfinite:
                return REFUTED, (
                    "sweeps on the falsification fixture produced NaN/Inf "
                    "from finite inputs"
                )
            return UNKNOWN, "no non-finite value observed on the fixture"
        if code == "W503":
            _, _, quiesced = _observe_sweeps(program)
            if quiesced:
                return UNKNOWN, (
                    "fixture quiesced, but no static bound exists to "
                    "certify against"
                )
            return UNKNOWN, (
                f"no fixpoint within {_c._FALSIFY_MAX_SWEEPS} sweeps on "
                "the falsification fixture"
            )
        if code == "W504":
            hulls, _, _ = _observe_sweeps(program)
            declared = getattr(program, "value_bounds", None) or {}
            for field, (dlo, dhi) in declared.items():
                r = hulls.get(field)
                if r is not None and r.finite and (
                    r.lo < float(dlo) or r.hi > float(dhi)
                ):
                    return REFUTED, (
                        f"observed values of {field!r} ({r.describe()}) "
                        "escape the declared value_bounds"
                    )
            return UNKNOWN, f"observed hull {_describe_hulls(hulls)}"
    except Exception as exc:  # kernels may reject the synthetic fixture
        return UNKNOWN, f"falsifier could not run: {exc!r}"
    return UNKNOWN, "no falsifier for this check"


# ======================================================================
# Entry points
# ======================================================================

def _analyze(program, graph, cert, bounds, fingerprint) -> RangesCertificate:
    analysis = _Analysis(program, graph, cert, bounds)
    analysis.derive()
    w501 = analysis.check_overflow()
    checks = [
        w501,
        analysis.check_nonfinite(w501),
        analysis.check_termination(),
        analysis.check_invariants(w501),
    ]
    final = []
    for check in checks:
        if check.status == UNKNOWN:
            status, note = _falsify_ranges(check.code, program)
            if status == REFUTED:
                check = CheckResult(check.code, REFUTED, "falsifier", note)
            else:
                check = CheckResult(
                    check.code, UNKNOWN, "falsifier",
                    f"{check.detail}; {note}",
                )
        final.append(check)
    ranges = analysis.ranges_tuple() if analysis.derived else ()
    return RangesCertificate(
        program=str(getattr(program, "name", type(program).__name__)),
        fingerprint=fingerprint,
        checks=tuple(final),
        ranges=ranges,
        bounds=bounds.key(),
    )


def analyze_ranges(program, graph, *, cache=None) -> RangesCertificate:
    """Run the abstract interpretation for ``program`` on ``graph``.

    ``cache`` follows the representation-cache convention (``None`` =
    process default, ``False`` = disabled, instance = use directly);
    results key by ``("ranges", fingerprint)`` where the fingerprint
    covers the program *and* the graph bounds.
    """
    from repro.analysis.certify import certify_program
    from repro.cache import resolve_cache

    if isinstance(program, type):
        try:
            program = program()
        except Exception:
            pass
    cert = certify_program(program, cache=cache)
    bounds = GraphBounds.from_graph(graph, program)
    fingerprint = ranges_fingerprint(program, bounds)
    store = resolve_cache(cache)
    key = ("ranges", fingerprint)
    if store is not None:
        hit = store.peek(key)
        if isinstance(hit, RangesCertificate):
            return hit
    out = _analyze(program, graph, cert, bounds, fingerprint)
    if store is not None:
        store.put(key, out)
    return out


def ranges_violations(program, graph, *, cache=None) -> list[Violation]:
    """Violation records for non-PROVED range certificates.

    REFUTED checks are errors (the kernel is provably unsafe for this
    graph's bounds); UNKNOWN checks are warnings.
    """
    cert = analyze_ranges(program, graph, cache=cache)
    out = []
    for code, status in cert.failed:
        check = cert.result(code)
        detail = f" ({check.detail})" if check and check.detail else ""
        out.append(
            Violation(
                code=code,
                message=f"range certificate {code} is {status}{detail}",
                subject=cert.program,
                severity="error" if status == REFUTED else "warning",
            )
        )
    return out


#: narrowing candidates per signedness, smallest first.
_NARROW_UNSIGNED = (np.uint8, np.uint16)
_NARROW_SIGNED = (np.int8, np.int16, np.int32)


def narrowing_plan(cert: RangesCertificate, program) -> dict[str, np.dtype]:
    """field -> narrower dtype map justified by a PROVED W501 + W504 pair.

    Only integer fields reduced through ``min``/``max`` (or not reduced at
    all) narrow: the ``UINT_INF`` sentinel remaps to the narrow dtype's
    max, which is order-preserving for min/max but not for sums.  A field
    with the sentinel present needs ``hi`` strictly below the narrow max
    so the remapped sentinel stays distinguishable.
    """
    out: dict[str, np.dtype] = {}
    if not (cert.proved("W501") and cert.proved("W504")):
        return out
    names = getattr(program, "vertex_dtype", None)
    names = names.names if names is not None else ()
    for field in names or ():
        base = _c._field_base_dtype(program, field)
        if base.kind not in "ui":
            continue
        if program.reduce_ops.get(field) not in (None, "min", "max"):
            continue
        triple = cert.field_range(field)
        if triple is None:
            continue
        lo, hi, has_inf = triple
        if lo > hi:
            continue
        if has_inf and base != np.dtype(np.uint32):
            continue  # sentinel remapping is defined for UINT_INF only
        candidates = _NARROW_UNSIGNED if base.kind == "u" else _NARROW_SIGNED
        for cand in candidates:
            dt = np.dtype(cand)
            if dt.itemsize >= base.itemsize:
                break
            info = np.iinfo(dt)
            if has_inf:
                if lo >= 0 and hi < float(info.max):
                    out[field] = dt
                    break
            elif lo >= float(info.min) and hi <= float(info.max):
                out[field] = dt
                break
    return out
