"""Trace exporters: JSONL, Chrome ``chrome://tracing``, CSV, aggregation.

The JSONL format is the interchange format: one JSON object per span per
line, schema below, written by ``python -m repro trace`` and validated by
:func:`validate_jsonl` (the CI smoke target).  The Chrome exporter maps the
same spans onto the Trace Event Format so a trace can be opened in
``chrome://tracing`` / Perfetto; model time is the timeline, with one lane
per span family.

JSONL schema (one record per line)::

    {"schema": "repro-trace", "version": 1, ...}        # first line: header
    {"span_id": int, "parent_id": int|null, "name": str,
     "kind": "run"|"iteration"|"stage"|"transfer"|"resilience"|"service"
             |"analysis"|"device",
     "wall_ms": float, "model_start_ms": float, "model_ms": float,
     "attrs": {...}, "stats": {...}|null}                # span lines
"""

from __future__ import annotations

import csv
import json
import pathlib

from repro.gpu.stats import KernelStats
from repro.telemetry.tracer import SPAN_KINDS, Span, stats_from_dict

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "span_record",
    "write_jsonl",
    "read_jsonl",
    "validate_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "write_csv",
    "aggregate_stage_stats",
]

SCHEMA_NAME = "repro-trace"
SCHEMA_VERSION = 1


def _spans(trace) -> list[Span]:
    """Accept a Tracer or any iterable of spans."""
    return list(getattr(trace, "spans", trace))


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------

def span_record(span: Span) -> dict:
    """One span as the JSONL record dict."""
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "kind": span.kind,
        "wall_ms": span.wall_ms,
        "model_start_ms": span.model_start_ms,
        "model_ms": span.model_ms,
        "attrs": span.attrs,
        "stats": span.stats,
    }


def write_jsonl(trace, path: str | pathlib.Path, *, meta: dict | None = None) -> pathlib.Path:
    """Dump a trace as JSON-lines; first line is the schema header."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION}
    if meta:
        header["meta"] = meta
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for span in _spans(trace):
            fh.write(json.dumps(span_record(span)) + "\n")
    return path


def read_jsonl(path: str | pathlib.Path) -> list[Span]:
    """Parse a JSONL trace back into :class:`Span` objects."""
    spans: list[Span] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if "schema" in rec:  # header line
                if rec["schema"] != SCHEMA_NAME:
                    raise ValueError(f"not a {SCHEMA_NAME} file: {path}")
                continue
            spans.append(
                Span(
                    span_id=rec["span_id"],
                    parent_id=rec["parent_id"],
                    name=rec["name"],
                    kind=rec["kind"],
                    wall_start_s=0.0,
                    wall_ms=rec["wall_ms"],
                    model_start_ms=rec["model_start_ms"],
                    model_ms=rec["model_ms"],
                    attrs=rec.get("attrs") or {},
                    stats=rec.get("stats"),
                )
            )
    return spans


_SPAN_FIELD_TYPES = {
    "span_id": int,
    "name": str,
    "kind": str,
    "wall_ms": (int, float),
    "model_start_ms": (int, float),
    "model_ms": (int, float),
    "attrs": dict,
}


def validate_jsonl(path: str | pathlib.Path) -> list[str]:
    """Schema-check a JSONL trace; returns a list of problems (empty = ok)."""
    errors: list[str] = []
    seen_ids: set[int] = set()
    header_ok = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: invalid JSON ({exc})")
                continue
            if lineno == 1:
                if rec.get("schema") == SCHEMA_NAME and isinstance(
                    rec.get("version"), int
                ):
                    header_ok = True
                else:
                    errors.append("line 1: missing repro-trace header")
                continue
            for fname, ftype in _SPAN_FIELD_TYPES.items():
                if fname not in rec:
                    errors.append(f"line {lineno}: missing field {fname!r}")
                elif not isinstance(rec[fname], ftype):
                    errors.append(
                        f"line {lineno}: field {fname!r} has type "
                        f"{type(rec[fname]).__name__}"
                    )
            if "parent_id" not in rec:
                errors.append(f"line {lineno}: missing field 'parent_id'")
            elif rec["parent_id"] is not None:
                if not isinstance(rec["parent_id"], int):
                    errors.append(f"line {lineno}: parent_id must be int|null")
                elif rec["parent_id"] not in seen_ids:
                    errors.append(
                        f"line {lineno}: parent_id {rec['parent_id']} "
                        "references an unseen span"
                    )
            if rec.get("kind") not in SPAN_KINDS:
                errors.append(f"line {lineno}: unknown kind {rec.get('kind')!r}")
            stats = rec.get("stats")
            if stats is not None and not isinstance(stats, dict):
                errors.append(f"line {lineno}: stats must be object|null")
            if isinstance(rec.get("span_id"), int):
                if rec["span_id"] in seen_ids:
                    errors.append(f"line {lineno}: duplicate span_id")
                seen_ids.add(rec["span_id"])
    if not header_ok and not errors:
        errors.append("missing repro-trace header")
    return errors


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------

_LANES = {
    "run": 0,
    "iteration": 1,
    "transfer": 2,
}
_STAGE_LANE_BASE = 3


def chrome_trace(trace) -> dict:
    """The trace as a ``chrome://tracing`` / Perfetto JSON object.

    Model time is the timeline (µs); each span family gets its own thread
    lane so stage costs (which may overlap their iteration) stay readable.
    """
    spans = _spans(trace)
    stage_lanes: dict[str, int] = {}
    events: list[dict] = []
    lane_names = {0: "run", 1: "iterations", 2: "transfers"}
    for span in spans:
        if span.kind == "stage":
            tid = stage_lanes.setdefault(
                span.name, _STAGE_LANE_BASE + len(stage_lanes)
            )
            lane_names[tid] = f"stage:{span.name}"
        else:
            tid = _LANES.get(span.kind, 0)
        args = dict(span.attrs)
        if span.stats is not None:
            args["stats"] = span.stats
        args["wall_ms"] = span.wall_ms
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.kind,
                "pid": 0,
                "tid": tid,
                "ts": span.model_start_ms * 1e3,
                "dur": span.model_ms * 1e3,
                "args": args,
            }
        )
    meta = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in sorted(lane_names.items())
    ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace, path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(trace)), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# CSV (plot-ready flat rows, mirrors repro.harness.export)
# ----------------------------------------------------------------------

def write_csv(trace, path: str | pathlib.Path) -> pathlib.Path:
    """Flatten spans into one CSV row each (attrs/stats as JSON columns)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "span_id",
                "parent_id",
                "kind",
                "name",
                "model_start_ms",
                "model_ms",
                "wall_ms",
                "attrs",
                "stats",
            ]
        )
        for span in _spans(trace):
            writer.writerow(
                [
                    span.span_id,
                    "" if span.parent_id is None else span.parent_id,
                    span.kind,
                    span.name,
                    f"{span.model_start_ms:.6f}",
                    f"{span.model_ms:.6f}",
                    f"{span.wall_ms:.6f}",
                    json.dumps(span.attrs, sort_keys=True),
                    "" if span.stats is None else json.dumps(span.stats, sort_keys=True),
                ]
            )
    return path


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

def aggregate_stage_stats(trace) -> dict[str, KernelStats]:
    """Sum the stats attached to ``stage`` spans, keyed by stage name.

    For engines that attach per-iteration stage stats this reproduces the
    legacy ``RunResult.stage_stats`` breakdown from the trace alone.
    """
    out: dict[str, KernelStats] = {}
    for span in _spans(trace):
        if span.kind != "stage" or span.stats is None:
            continue
        acc = out.setdefault(span.name, KernelStats())
        acc += stats_from_dict(span.stats)
    return out
