"""Structured tracing + metrics for the CuSha reproduction.

Public surface:

- :class:`Tracer` / :class:`NullTracer` / :data:`NULL_TRACER` — typed span
  collection (``run``/``iteration``/``stage``/``transfer``) over wall time
  and model time, zero-overhead when disabled;
- :class:`MetricsRegistry` — named counters/gauges/histograms engines
  publish hardware activity into (``tracer.metrics``);
- exporters — JSONL dump/load/validate, Chrome ``chrome://tracing``
  format, flat CSV, and stage-stats aggregation.

Typical use::

    from repro.telemetry import Tracer, write_jsonl

    tracer = Tracer()
    result = engine.run(graph, program, config=RunConfig(tracer=tracer))
    write_jsonl(tracer, "trace.jsonl")
"""

from repro.telemetry.exporters import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    aggregate_stage_stats,
    chrome_trace,
    read_jsonl,
    span_record,
    validate_jsonl,
    write_chrome_trace,
    write_csv,
    write_jsonl,
)
from repro.telemetry.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    publish_kernel_stats,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    SPAN_KINDS,
    NullTracer,
    Span,
    Tracer,
    stats_from_dict,
    stats_to_dict,
)

__all__ = [
    # tracer
    "SPAN_KINDS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "stats_to_dict",
    "stats_from_dict",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "publish_kernel_stats",
    # exporters
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "span_record",
    "write_jsonl",
    "read_jsonl",
    "validate_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "write_csv",
    "aggregate_stage_stats",
]
