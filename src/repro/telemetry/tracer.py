"""Structured tracing: typed span events over the run/model timeline.

A :class:`Tracer` collects :class:`Span` records that engines emit while
they execute: one ``run`` span per engine invocation, one ``iteration``
span per fixpoint iteration, ``stage`` spans for the pipeline stages whose
hardware activity the paper attributes (CuSha's four stages, VWC's
gather/scatter phases), and ``transfer`` spans for the PCIe copies.

Every span carries two clocks:

- **wall time** (``wall_start_s``/``wall_ms``) — how long the simulator
  itself took, measured with :func:`time.perf_counter`;
- **model time** (``model_start_ms``/``model_ms``) — the simulated
  milliseconds on the modeled device, which is what the paper's figures
  report.  Transfer and iteration spans tile the model timeline
  (``h2d → iterations → d2h``); stage spans carry each stage's standalone
  modeled cost.

Spans may also attach the :class:`~repro.gpu.stats.KernelStats` delta they
covered (as a plain dict, so traces serialize) — per-stage traces sum to
the run's aggregate stats, which is what makes the Fig. 10 / stage
breakdown benches thin consumers of the tracer.

The default tracer everywhere is :data:`NULL_TRACER`, a zero-overhead
no-op: engines guard any non-trivial span bookkeeping behind
``tracer.enabled`` so an untraced run does no extra work and produces
byte-identical results.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.gpu.stats import KernelStats

__all__ = [
    "SPAN_KINDS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "stats_to_dict",
    "stats_from_dict",
]

SPAN_KINDS = ("run", "iteration", "stage", "transfer", "resilience",
              "service", "analysis", "device")
"""The typed span vocabulary.  ``run`` wraps one engine invocation,
``iteration`` one fixpoint iteration, ``stage`` one pipeline stage or
phase within an iteration, ``transfer`` one host-device copy (including
the per-iteration multi-device ``exchange`` step),
``resilience`` one supervisor transition (fault detection, retry,
checkpoint restore, degradation) recorded by
:class:`repro.resilience.ResilientRunner`, ``service`` one scheduler
event (job admission, batch execution, shed, cancellation) recorded by
:class:`repro.service.Service`, ``analysis`` one static-analysis
gate (the kernel-certification lookup and its enforce/warn decision,
recorded by :func:`repro.analysis.certify.runtime_gate`), and
``device`` one modeled device's per-run busy summary under a
multi-device placement (see :mod:`repro.placement`)."""


def stats_to_dict(stats: KernelStats) -> dict:
    """A :class:`KernelStats` as a JSON-serializable plain dict."""
    return dataclasses.asdict(stats)


def stats_from_dict(d: dict) -> KernelStats:
    """Rebuild a :class:`KernelStats` from :func:`stats_to_dict` output."""
    return KernelStats(**d)


@dataclass
class Span:
    """One traced event.  ``parent_id`` encodes the nesting."""

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    wall_start_s: float
    wall_ms: float = 0.0
    model_start_ms: float = 0.0
    model_ms: float = 0.0
    attrs: dict = field(default_factory=dict)
    stats: dict | None = None

    def kernel_stats(self) -> KernelStats | None:
        """The attached hardware-activity delta, if any."""
        return None if self.stats is None else stats_from_dict(self.stats)


class _SpanContext:
    """Context manager opening/closing one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects spans.  Engines receive one via ``RunConfig.tracer``."""

    enabled: bool = True

    def __init__(self) -> None:
        # Imported here to avoid a cycle at module load: metrics has no
        # dependency on the tracer, but both re-export from the package root.
        from repro.telemetry.metrics import MetricsRegistry

        self.spans: list[Span] = []
        self.metrics = MetricsRegistry()
        self._stack: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def _new_span(
        self, name: str, kind: str, model_start_ms: float, attrs: dict
    ) -> Span:
        if kind not in SPAN_KINDS:
            raise ValueError(
                f"unknown span kind {kind!r}; expected one of {SPAN_KINDS}"
            )
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            kind=kind,
            wall_start_s=time.perf_counter(),
            model_start_ms=model_start_ms,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def _close(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        span.wall_ms = (time.perf_counter() - span.wall_start_s) * 1e3

    # ------------------------------------------------------------------
    def span(
        self, name: str, kind: str, *, model_start_ms: float = 0.0, **attrs
    ) -> _SpanContext:
        """Open a nested span; ``with tracer.span(...) as sp:`` closes it.

        Set ``sp.model_ms`` / ``sp.stats`` / ``sp.attrs[...]`` inside the
        block; wall time is measured automatically.
        """
        span = self._new_span(name, kind, model_start_ms, dict(attrs))
        self._stack.append(span)
        return _SpanContext(self, span)

    def emit(
        self,
        name: str,
        kind: str,
        *,
        model_start_ms: float = 0.0,
        model_ms: float = 0.0,
        stats: KernelStats | dict | None = None,
        **attrs,
    ) -> Span:
        """Record a completed child span of the currently open span.

        Used for analytic events (stages, transfers) whose model cost is
        known at emission; wall duration is recorded as zero.
        """
        span = self._new_span(name, kind, model_start_ms, dict(attrs))
        span.model_ms = model_ms
        if stats is not None:
            span.stats = (
                stats_to_dict(stats)
                if isinstance(stats, KernelStats)
                else dict(stats)
            )
        return span

    # ------------------------------------------------------------------
    def find(self, *, kind: str | None = None, name: str | None = None) -> list[Span]:
        """Spans filtered by kind and/or name, in emission order."""
        return [
            s
            for s in self.spans
            if (kind is None or s.kind == kind)
            and (name is None or s.name == name)
        ]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def __len__(self) -> int:
        return len(self.spans)


# ----------------------------------------------------------------------
# The zero-overhead default
# ----------------------------------------------------------------------

class _NullSpan:
    """Absorbs every read and write an engine might do on a span."""

    __slots__ = ()

    def __setattr__(self, name: str, value) -> None:  # pragma: no cover
        pass

    @property
    def attrs(self) -> dict:
        return {}

    @property
    def stats(self) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CM = _NullSpanContext()


class NullTracer:
    """No-op tracer: records nothing, allocates nothing per call.

    Engines check ``tracer.enabled`` before computing anything that only
    tracing needs, so a run with the null tracer is bit-identical to a run
    with no telemetry code at all.
    """

    enabled: bool = False

    def __init__(self) -> None:
        from repro.telemetry.metrics import NULL_METRICS

        self.metrics = NULL_METRICS

    @property
    def spans(self) -> list[Span]:
        return []

    def span(self, name: str, kind: str, **kw) -> _NullSpanContext:
        return _NULL_CM

    def emit(self, name: str, kind: str, **kw) -> _NullSpan:
        return _NULL_SPAN

    def find(self, **kw) -> list[Span]:
        return []

    def children(self, span) -> list[Span]:
        return []

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
"""Shared no-op tracer; the default ``RunConfig.tracer``."""
