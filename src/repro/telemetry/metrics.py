"""Metrics registry: named counters, gauges, and histograms.

Engines publish the quantities the paper's evaluation keys on — memory
transactions, lane slots, atomics, updated vertices per iteration, wave
counts — into a :class:`MetricsRegistry` instead of growing ad-hoc fields
on ``RunResult``.  A registry lives on every :class:`~repro.telemetry.Tracer`
(``tracer.metrics``); the :data:`NULL_METRICS` twin on the null tracer
swallows publishes for free, so instrumented code never branches.

Conventions
-----------
Metric names are dotted, ``<namespace>.<quantity>``:

- ``engine.*`` — engine-agnostic run aggregates (``engine.iterations``,
  ``engine.load_transactions``, ``engine.store_transactions``,
  ``engine.active_lane_slots``, ``engine.total_lane_slots``,
  ``engine.shared_atomics``, ``engine.global_atomics``, and the
  per-iteration histogram ``engine.updated_vertices``);
- ``cusha.*`` / ``vwc.*`` / ``csr.*`` / ``streamed.*`` — engine-specific
  extras (wave size and count, chunk counts, reduction ops);
- ``analysis.violations*`` — preflight validation outcomes (total, per
  severity, per violation kind);
- ``analysis.perf.*`` — drift-gate outcomes (``stages_checked``,
  ``fields_checked``, ``drift_violations`` counters and the
  ``analysis.perf.iterations.<engine>`` gauges).
"""

from __future__ import annotations

import math

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "publish_kernel_stats",
]


class Counter:
    """Monotonically increasing integer/float count."""

    __slots__ = ("name", "value")
    metric_type = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (e.g. the chosen wave size or |N|)."""

    __slots__ = ("name", "value")
    metric_type = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float | None = None

    def set(self, value: int | float) -> None:
        self.value = value

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming summary with power-of-two buckets.

    Bucket ``k`` counts observations in ``(2**(k-1), 2**k]`` (bucket 0
    counts values <= 1), which is plenty for the heavy-tailed per-iteration
    quantities (updated vertices, window sizes) this repo tracks.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")
    metric_type = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        k = 0 if value <= 1 else math.ceil(math.log2(value))
        self.buckets[k] = self.buckets.get(k, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Get-or-create home of named instruments."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        inst = self._metrics.get(name)
        if inst is None:
            inst = self._metrics[name] = cls(name)
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.metric_type}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def as_dict(self) -> dict[str, dict]:
        """Snapshot of every instrument, JSON-serializable."""
        return {n: self._metrics[n].as_dict() for n in self.names()}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self.names())


# ----------------------------------------------------------------------
# Null twins (the NullTracer's registry)
# ----------------------------------------------------------------------

class _NullInstrument:
    __slots__ = ()
    name = ""
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def as_dict(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Accepts every publish and records nothing."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def names(self) -> list[str]:
        return []

    def get(self, name: str) -> None:
        return None

    def as_dict(self) -> dict:
        return {}

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def __iter__(self):
        return iter(())


NULL_METRICS = NullMetricsRegistry()


def publish_kernel_stats(registry, stats, *, prefix: str = "engine") -> None:
    """Publish a :class:`~repro.gpu.stats.KernelStats` aggregate as counters."""
    registry.counter(f"{prefix}.load_transactions").inc(stats.load_transactions)
    registry.counter(f"{prefix}.store_transactions").inc(stats.store_transactions)
    registry.counter(f"{prefix}.active_lane_slots").inc(stats.active_lane_slots)
    registry.counter(f"{prefix}.total_lane_slots").inc(stats.total_lane_slots)
    registry.counter(f"{prefix}.shared_atomics").inc(stats.shared_atomics)
    registry.counter(f"{prefix}.global_atomics").inc(stats.global_atomics)
