"""SIMT GPU performance-model simulator.

The paper ran on an Nvidia GTX 780; this environment has no GPU, so
``repro.gpu`` models the parts of the hardware that CuSha's claims are
about — DRAM transaction coalescing, warp-lane utilization, shared-memory
atomics, block/SM occupancy, kernel launch overhead, and PCIe transfers —
and derives kernel runtimes and CUDA-profiler-style efficiency metrics from
the *actual address streams* the graph representations induce.

Modules
-------
- :mod:`repro.gpu.spec` — hardware parameter sheets (GPU, CPU, PCIe).
- :mod:`repro.gpu.memory` — the 128-byte-transaction coalescing model.
- :mod:`repro.gpu.warp` — warp-lane activity accounting.
- :mod:`repro.gpu.occupancy` — resident blocks/warps per SM.
- :mod:`repro.gpu.stats` — :class:`KernelStats` and the profiler-metric
  definitions (gld/gst efficiency, warp execution efficiency).
- :mod:`repro.gpu.engine` — the cycle cost model turning stats into
  milliseconds.
- :mod:`repro.gpu.pcie` — host-device transfer times.
"""

from repro.gpu.spec import GPUSpec, CPUSpec, PCIeSpec, GTX780, I7_3930K
from repro.gpu.stats import KernelStats
from repro.gpu.engine import KernelCostModel

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "PCIeSpec",
    "GTX780",
    "I7_3930K",
    "KernelStats",
    "KernelCostModel",
]
