"""Host-device transfer model (paper Figure 10's H2D / D2H components).

CuSha pays more H2D time than VWC-CSR because G-Shards/CW occupy 2-2.6x the
bytes of CSR (Figure 9); D2H moves only the final ``VertexValues`` and is
negligible.  Both effects follow directly from byte counts through this
model.
"""

from __future__ import annotations

from repro.gpu.spec import PCIeSpec

__all__ = ["transfer_ms"]


def transfer_ms(num_bytes: int, spec: PCIeSpec) -> float:
    """Milliseconds to move ``num_bytes`` over the interconnect."""
    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    if num_bytes == 0:
        return 0.0
    return spec.latency_us / 1e3 + num_bytes / (spec.bandwidth_gb_per_s * 1e6)
