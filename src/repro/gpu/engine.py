"""Cycle cost model: :class:`KernelStats` → milliseconds.

A graph-processing kernel on a throughput machine is bounded by whichever
pipe saturates first:

- the **memory system**: ``transactions * 128 B`` must stream through the
  DRAM interface (``spec.bytes_per_cycle`` per core-clock cycle);
- the **issue pipes**: every warp instruction (including ones mostly-idle
  warps issue — that is how divergence costs time) takes a slot on one of
  the SM schedulers; shared/global atomics add serialized cycles on top.

``time = launch_overhead + max(mem_time, issue_time)`` per kernel, with a
DRAM-latency floor so near-empty kernels don't cost zero.  An occupancy
factor below ~0.5 degrades the achievable memory throughput (too few
resident warps to cover latency), which is how shard sizing feeds back into
runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.spec import GPUSpec
from repro.gpu.stats import KernelStats

__all__ = ["KernelCostModel"]


@dataclass(frozen=True)
class KernelCostModel:
    """Prices kernels against a :class:`~repro.gpu.spec.GPUSpec`.

    ``instruction_overhead`` scales issued warp instructions into pipeline
    slots (covers address arithmetic, predication, and loop control beyond
    the per-row charge the engines record).
    """

    spec: GPUSpec
    instruction_overhead: float = 1.0
    latency_hiding_occupancy: float = 0.5

    def memory_cycles(self, stats: KernelStats) -> float:
        moved = stats.load_bytes_moved + stats.store_bytes_moved
        return moved / self.spec.bytes_per_cycle

    def issue_cycles(self, stats: KernelStats) -> float:
        issue = (
            stats.warp_instructions
            * self.instruction_overhead
            / (self.spec.num_sms * self.spec.issue_slots_per_sm_per_cycle)
        )
        # Atomics are bank-parallel: an SM retires up to warp_size shared
        # atomics per issue round, so the serialized cost is amortized over
        # num_sms * warp_size lanes.
        atomics = (
            stats.shared_atomics * self.spec.shared_atomic_cycles
            + stats.global_atomics * self.spec.global_atomic_cycles
        ) / (self.spec.num_sms * self.spec.warp_size)
        return issue + atomics

    def kernel_cycles(self, stats: KernelStats, *, occupancy: float = 1.0) -> float:
        """Execution cycles of one kernel (no launch overhead)."""
        mem = self.memory_cycles(stats)
        if 0.0 < occupancy < self.latency_hiding_occupancy:
            # Too few resident warps to hide DRAM latency: memory throughput
            # degrades proportionally.
            mem /= occupancy / self.latency_hiding_occupancy
        cycles = max(mem, self.issue_cycles(stats))
        if stats.total_transactions > 0:
            cycles = max(cycles, self.spec.dram_latency_cycles)
        return cycles

    def time_ms(self, stats: KernelStats, *, occupancy: float = 1.0) -> float:
        """Wall time of ``stats`` worth of kernels, in milliseconds.

        ``stats.kernel_launches`` launches are each charged the fixed
        overhead; the execution cycles are priced as one aggregate (valid
        because the engines accumulate per-kernel stats and sum times, or
        pass per-kernel stats here directly).
        """
        cycles = self.kernel_cycles(stats, occupancy=occupancy)
        exec_ms = cycles / (self.spec.clock_ghz * 1e6)
        launch_ms = stats.kernel_launches * self.spec.kernel_launch_overhead_us / 1e3
        return exec_ms + launch_ms
