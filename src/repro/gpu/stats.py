"""Kernel statistics and CUDA-profiler-style efficiency metrics.

One :class:`KernelStats` accumulates everything a kernel (one iteration of
one engine) did: memory transactions with the bytes actually wanted, warp
lane-slot activity, issued warp-instructions, and atomic counts.  The
derived properties implement the profiler metrics quoted by the paper:

- ``gld_efficiency`` / ``gst_efficiency`` — requested bytes over
  ``transactions * 128`` (Table 2, Figure 8);
- ``warp_execution_efficiency`` — active lane slots over total lane slots
  (Table 2, Figure 8).

Stats add componentwise, so per-stage and per-iteration stats roll up into a
run total whose metrics are the traffic-weighted averages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.memory import TransactionCount

__all__ = ["KernelStats", "COUNTER_FIELDS", "field_diffs"]


LOAD_GRANULARITY_BYTES = 32
"""Bytes one load transaction moves (Kepler 32-byte L2 sectors)."""

STORE_GRANULARITY_BYTES = 128
"""Bytes one store transaction moves (write-allocated L2 lines)."""


@dataclass
class KernelStats:
    """Aggregated hardware activity of one kernel (or a sum of kernels)."""

    load_transactions: int = 0
    load_bytes_requested: int = 0
    store_transactions: int = 0
    store_bytes_requested: int = 0
    active_lane_slots: int = 0
    total_lane_slots: int = 0
    warp_instructions: float = 0.0
    shared_atomics: int = 0
    global_atomics: int = 0
    kernel_launches: int = 0

    # ------------------------------------------------------------------
    # Recording helpers
    # ------------------------------------------------------------------
    def add_load(self, tc: TransactionCount) -> None:
        self.load_transactions += tc.transactions
        self.load_bytes_requested += tc.bytes_requested

    def add_store(self, tc: TransactionCount) -> None:
        self.store_transactions += tc.transactions
        self.store_bytes_requested += tc.bytes_requested

    def add_load_raw(self, transactions: int, bytes_requested: int) -> None:
        self.load_transactions += int(transactions)
        self.load_bytes_requested += int(bytes_requested)

    def add_store_raw(self, transactions: int, bytes_requested: int) -> None:
        self.store_transactions += int(transactions)
        self.store_bytes_requested += int(bytes_requested)

    def add_lanes(
        self, active: int, total: int, *, instructions_per_row: float = 1.0,
        warp_size: int = 32,
    ) -> None:
        """Record lane activity and charge issue slots for it.

        ``total`` lane slots correspond to ``total / warp_size`` warp
        instructions, each weighted by ``instructions_per_row`` (how many
        instructions the loop body issues per element step).
        """
        self.active_lane_slots += active
        self.total_lane_slots += total
        self.warp_instructions += (total / warp_size) * instructions_per_row

    def add_instructions(self, count: float) -> None:
        """Charge warp instructions with no lane-activity footprint (uniform
        control flow such as loop bounds checks)."""
        self.warp_instructions += count

    def add_atomics(self, shared: int = 0, global_: int = 0) -> None:
        self.shared_atomics += shared
        self.global_atomics += global_

    # ------------------------------------------------------------------
    # Profiler metrics
    # ------------------------------------------------------------------
    @property
    def gld_efficiency(self) -> float:
        """Global-memory load efficiency in [0, 1]."""
        if self.load_transactions == 0:
            return 1.0
        return self.load_bytes_requested / (
            self.load_transactions * LOAD_GRANULARITY_BYTES
        )

    @property
    def gst_efficiency(self) -> float:
        """Global-memory store efficiency in [0, 1]."""
        if self.store_transactions == 0:
            return 1.0
        return self.store_bytes_requested / (
            self.store_transactions * STORE_GRANULARITY_BYTES
        )

    @property
    def load_bytes_moved(self) -> int:
        return self.load_transactions * LOAD_GRANULARITY_BYTES

    @property
    def store_bytes_moved(self) -> int:
        return self.store_transactions * STORE_GRANULARITY_BYTES

    @property
    def warp_execution_efficiency(self) -> float:
        """Average active-lane fraction in [0, 1]."""
        if self.total_lane_slots == 0:
            return 1.0
        return self.active_lane_slots / self.total_lane_slots

    @property
    def total_transactions(self) -> int:
        return self.load_transactions + self.store_transactions

    @property
    def total_bytes_requested(self) -> int:
        """Load + store bytes the kernels asked DRAM for.

        This is the quantity proven-safe dtype narrowing shrinks (the
        ``ranges`` perfgate layer thresholds its reduction), so it gets a
        named accessor rather than ad-hoc sums at the call sites.
        """
        return self.load_bytes_requested + self.store_bytes_requested

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def __add__(self, other: "KernelStats") -> "KernelStats":
        return KernelStats(
            self.load_transactions + other.load_transactions,
            self.load_bytes_requested + other.load_bytes_requested,
            self.store_transactions + other.store_transactions,
            self.store_bytes_requested + other.store_bytes_requested,
            self.active_lane_slots + other.active_lane_slots,
            self.total_lane_slots + other.total_lane_slots,
            self.warp_instructions + other.warp_instructions,
            self.shared_atomics + other.shared_atomics,
            self.global_atomics + other.global_atomics,
            self.kernel_launches + other.kernel_launches,
        )

    def __iadd__(self, other: "KernelStats") -> "KernelStats":
        self.load_transactions += other.load_transactions
        self.load_bytes_requested += other.load_bytes_requested
        self.store_transactions += other.store_transactions
        self.store_bytes_requested += other.store_bytes_requested
        self.active_lane_slots += other.active_lane_slots
        self.total_lane_slots += other.total_lane_slots
        self.warp_instructions += other.warp_instructions
        self.shared_atomics += other.shared_atomics
        self.global_atomics += other.global_atomics
        self.kernel_launches += other.kernel_launches
        return self

    def copy(self) -> "KernelStats":
        return self + KernelStats()


#: Counter fields the static perf auditor can predict and compare.
#: ``warp_instructions`` is deliberately excluded: instruction totals are
#: floats accumulated in path-dependent order and get a toleranced
#: comparison instead; ``kernel_launches`` is an execution artifact.
COUNTER_FIELDS: tuple[str, ...] = (
    "load_transactions",
    "load_bytes_requested",
    "store_transactions",
    "store_bytes_requested",
    "active_lane_slots",
    "total_lane_slots",
    "shared_atomics",
    "global_atomics",
)


def field_diffs(
    predicted: "KernelStats",
    measured: "KernelStats",
    fields: tuple[str, ...] = COUNTER_FIELDS,
    *,
    scale: int = 1,
) -> dict[str, tuple[float, float]]:
    """Fields where ``predicted * scale`` and ``measured`` disagree.

    Returns ``{field: (expected, measured)}`` for every mismatch; empty
    dict means the prediction holds exactly.  ``scale`` repeats the
    per-sweep prediction over that many iterations.
    """
    out: dict[str, tuple[float, float]] = {}
    for f in fields:
        want = getattr(predicted, f) * scale
        got = getattr(measured, f)
        if want != got:
            out[f] = (want, got)
    return out
