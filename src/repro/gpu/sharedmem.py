"""Shared-memory bank-conflict model.

Kepler shared memory has 32 banks; when several lanes of a warp issue
atomics to addresses in the same bank, the accesses serialize into replays.
CuSha's stage 2 reduces into ``local_vertices[DestIndex - offset]``, so the
destination pattern of each warp-row of shard entries determines the
replay count — low for shards with spread destinations (the paper's "lock
contention is low because of the size of shards"), high when many entries
share a destination.

:func:`conflict_replays` counts, for each warp-row of 32 consecutive
entries, ``max_bank_multiplicity - 1`` (the extra serialized rounds) and
returns the total.  It is computed once per shard (the pattern is static).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conflict_replays",
    "conflict_replays_segmented",
    "bank_multiplicity_histogram",
    "replay_fraction",
]


def _row_max_multiplicity(banks: np.ndarray) -> np.ndarray:
    """Per row, the largest number of lanes hitting one bank.

    ``banks`` is ``(rows, lanes)``; rows are sorted and run lengths counted
    vectorized.
    """
    s = np.sort(banks, axis=1)
    rows, lanes = s.shape
    # run id increments where the value changes
    change = np.ones((rows, lanes), dtype=np.int64)
    change[:, 1:] = (s[:, 1:] != s[:, :-1]).astype(np.int64)
    run_id = np.cumsum(change, axis=1)  # 1..k per row
    # count run lengths: offset run ids per row to make them globally unique
    offset = (np.arange(rows, dtype=np.int64) * (lanes + 1))[:, None]
    flat = (run_id + offset).ravel()
    counts = np.bincount(flat, minlength=rows * (lanes + 1) + lanes + 2)
    per_row = counts[: rows * (lanes + 1) + 1]
    # max run length per row
    grid = np.zeros((rows, lanes + 1), dtype=np.int64)
    grid.ravel()[: per_row.size - 1] = per_row[1:]
    return grid.max(axis=1)


def conflict_replays(
    dest_idx: np.ndarray, *, warp_size: int = 32, banks: int = 32,
    value_words: int = 1,
) -> int:
    """Total atomic replay rounds for a warp-schedule over ``dest_idx``.

    ``dest_idx[k]`` is the shared-memory slot lane ``k`` atomically updates
    (consecutive lanes form warps).  A row whose 32 lanes hit 32 distinct
    banks replays 0 times; a row where ``m`` lanes share a bank replays
    ``m - 1`` times.  ``value_words`` scales slot indices to 4-byte words
    (8-byte vertex values stride two banks).
    """
    idx = np.asarray(dest_idx, dtype=np.int64)
    if idx.size == 0:
        return 0
    bank = (idx * value_words) % banks
    pad = (-bank.size) % warp_size
    if pad:
        # Padding lanes get unique out-of-range "banks": runs of length one
        # that never create (or mask) a conflict.
        filler = banks + np.arange(pad, dtype=np.int64)
        bank = np.concatenate([bank, filler])
    rows = bank.reshape(-1, warp_size)
    max_mult = _row_max_multiplicity(rows)
    return int((max_mult - 1).sum())


def conflict_replays_segmented(
    dest_idx: np.ndarray,
    seg_offsets: np.ndarray,
    *,
    warp_size: int = 32,
    banks: int = 32,
    value_words: int = 1,
    per_segment: bool = False,
) -> int | tuple[int, np.ndarray]:
    """Replay rounds for many independent warp-schedules in one pass.

    Segment ``k`` is ``dest_idx[seg_offsets[k] : seg_offsets[k + 1]]`` and
    is priced exactly like a standalone :func:`conflict_replays` call on it
    (warp rows never span segments; each segment pads its last row with
    conflict-free filler lanes).  ``per_segment=True`` additionally returns
    the per-segment replay totals.
    """
    idx = np.asarray(dest_idx, dtype=np.int64)
    seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
    num_segments = seg_offsets.size - 1
    sizes = np.diff(seg_offsets)
    if idx.size == 0:
        if per_segment:
            return 0, np.zeros(num_segments, dtype=np.int64)
        return 0
    rows_per = -(-sizes // warp_size)
    total_rows = int(rows_per.sum())
    row_offsets = np.concatenate([[0], np.cumsum(rows_per)])
    # Filler lanes take distinct out-of-range banks per row (runs of length
    # one); real entries are scattered over them at their in-segment slot.
    padded = np.tile(banks + np.arange(warp_size, dtype=np.int64), total_rows)
    seg_id = np.repeat(np.arange(num_segments, dtype=np.int64), sizes)
    rank = np.arange(idx.size, dtype=np.int64) - np.repeat(seg_offsets[:-1], sizes)
    pos = (row_offsets[seg_id] + rank // warp_size) * warp_size + rank % warp_size
    padded[pos] = (idx * value_words) % banks
    max_mult = _row_max_multiplicity(padded.reshape(total_rows, warp_size))
    replays = max_mult - 1
    total = int(replays.sum())
    if not per_segment:
        return total
    row_seg = np.repeat(np.arange(num_segments, dtype=np.int64), rows_per)
    per = np.bincount(row_seg, weights=replays, minlength=num_segments)
    return total, per.astype(np.int64)


def bank_multiplicity_histogram(
    dest_idx: np.ndarray, *, warp_size: int = 32, banks: int = 32
) -> np.ndarray:
    """Histogram of per-row maximum bank multiplicities (1..warp_size)."""
    idx = np.asarray(dest_idx, dtype=np.int64)
    if idx.size == 0:
        return np.zeros(warp_size + 1, dtype=np.int64)
    bank = idx % banks
    pad = (-bank.size) % warp_size
    if pad:
        filler = banks + np.arange(pad, dtype=np.int64)
        bank = np.concatenate([bank, filler])
    rows = bank.reshape(-1, warp_size)
    mult = _row_max_multiplicity(rows)
    return np.bincount(mult, minlength=warp_size + 1).astype(np.int64)


def replay_fraction(
    replays: int, rows: int, *, warp_size: int = 32
) -> float:
    """Replays as a fraction of the fully serialized worst case.

    The worst a warp-row can do is ``warp_size - 1`` replay rounds (all
    lanes on one bank); ``1.0`` means every row serializes completely.
    Used by the perf auditor's ``P305`` lock-contention warning.
    """
    if rows <= 0 or warp_size <= 1:
        return 0.0
    return replays / (rows * (warp_size - 1))
