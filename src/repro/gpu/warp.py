"""Warp-lane activity accounting.

The CUDA profiler's *warp execution efficiency* is the average fraction of
active lanes per issued warp instruction.  The engines produce two shapes of
lane schedule:

- contiguous work lists processed by consecutive threads
  (:func:`slots_for_contiguous`) — e.g. CuSha stages 1-3 and CW write-back;
- one warp iterating over a variable-length segment
  (:func:`slots_for_segments`) — e.g. G-Shards write-back windows, and the
  per-virtual-warp neighbor loops of VWC-CSR.

Both return ``(active_slots, total_slots)`` pairs; efficiency is the ratio
after summing over a whole kernel.
"""

from __future__ import annotations

import numpy as np

__all__ = ["slots_for_contiguous", "slots_for_segments", "reduction_slots"]


def slots_for_contiguous(num_items: int, warp_size: int = 32) -> tuple[int, int]:
    """Lane slots when ``num_items`` tasks map to consecutive threads.

    Every warp except possibly the last runs fully populated; the tail warp
    carries ``num_items % warp_size`` active lanes.
    """
    if num_items <= 0:
        return 0, 0
    rows = -(-num_items // warp_size)
    return num_items, rows * warp_size


def slots_for_segments(
    sizes: np.ndarray, warp_size: int = 32, *, lanes_per_task: int | None = None
) -> tuple[int, int]:
    """Lane slots when each segment is iterated by one warp (or sub-warp).

    ``sizes[i]`` tasks are processed ``lanes_per_task`` at a time (default: a
    full warp).  A segment of size ``L`` therefore occupies
    ``ceil(L / lanes) * warp_size`` slots with ``L`` of them active — the
    underutilization G-Shards write-back suffers on small windows.

    Empty segments cost nothing (the warp skips them after a bounds check,
    charged as instruction overhead elsewhere).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size == 0:
        return 0, 0
    lanes = warp_size if lanes_per_task is None else lanes_per_task
    if lanes <= 0 or lanes > warp_size:
        raise ValueError("lanes_per_task must be in [1, warp_size]")
    active = int(sizes.sum())
    rows = -(-sizes // lanes)
    total = int(rows.sum()) * lanes
    # When lanes < warp_size the task occupies only its slice of the physical
    # warp; lockstep divergence against sibling sub-warps (physical-warp
    # steps = max over siblings) is accounted by the VWC schedule builder,
    # which knows the sibling grouping.
    return active, total


def reduction_slots(
    sizes: np.ndarray, virtual_warp_size: int, warp_size: int = 32
) -> tuple[int, int]:
    """Lane slots of the parallel-reduction step of VWC-CSR (paper Fig. 14).

    A virtual warp of ``w`` lanes reduces its ``w`` partial results in
    ``log2(w)`` steps with halving active-lane counts; vertices with no
    neighbors skip the reduction.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size == 0 or virtual_warp_size <= 1:
        return 0, 0
    steps = int(np.log2(virtual_warp_size))
    nonempty = int((sizes > 0).sum())
    active = nonempty * (virtual_warp_size - 1)  # sum of w/2 + w/4 + ... + 1
    total = nonempty * steps * virtual_warp_size
    return active, total
