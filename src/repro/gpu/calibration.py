"""Cost-model sensitivity analysis.

The reproduction's central methodological claim (README, docs/modeling.md)
is that the *calibration constants* — per-loop-body instruction counts,
atomic costs — shift all engines together, so cross-engine speedups are
insensitive to them, while the *counted quantities* (transactions, lane
slots) carry the paper's effects.  This module makes that claim testable:

:func:`sensitivity_report` re-prices a fixed set of engine runs under
perturbed hardware constants and reports how much each speedup ratio moves.
Because engines consume the spec at run time, perturbation means re-running
with a modified :class:`~repro.gpu.spec.GPUSpec` / instruction overhead;
values are identical across runs (pricing never feeds back into values), so
only the time model varies.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.algorithms import make_program
from repro.frameworks.base import RunConfig
from repro.frameworks.cusha import CuShaEngine
from repro.frameworks.vwc import VWCEngine
from repro.gpu.spec import GTX780, GPUSpec

__all__ = ["SensitivityResult", "sensitivity_report", "DEFAULT_PERTURBATIONS"]

DEFAULT_PERTURBATIONS: tuple[tuple[str, float], ...] = (
    ("issue_slots_per_sm_per_cycle", 0.5),
    ("issue_slots_per_sm_per_cycle", 2.0),
    ("shared_atomic_cycles", 0.5),
    ("shared_atomic_cycles", 2.0),
    ("mem_bandwidth_gb_per_s", 0.5),
    ("mem_bandwidth_gb_per_s", 2.0),
    ("kernel_launch_overhead_us", 0.5),
    ("kernel_launch_overhead_us", 2.0),
)
"""(spec field, multiplier) pairs: halve/double each rate-like constant."""


@dataclass(frozen=True)
class SensitivityResult:
    """Speedup of CuSha-CW over a VWC baseline under one perturbation."""

    field: str
    multiplier: float
    speedup: float

    def deviation_from(self, baseline: float) -> float:
        """Relative change of the speedup vs the unperturbed model."""
        if baseline == 0:
            return 0.0
        return abs(self.speedup - baseline) / baseline


def _speedup(graph, program_name: str, spec: GPUSpec,
             *, vwc_size: int, max_iterations: int) -> float:
    p1 = make_program(program_name, graph)
    cw = CuShaEngine("cw", spec=spec).run(
        graph, p1, config=RunConfig(
            max_iterations=max_iterations, allow_partial=True
        )
    )
    p2 = make_program(program_name, graph)
    vwc = VWCEngine(vwc_size, spec=spec).run(
        graph, p2, config=RunConfig(
            max_iterations=max_iterations, allow_partial=True
        )
    )
    return vwc.kernel_time_ms / cw.kernel_time_ms


def sensitivity_report(
    graph,
    program_name: str = "pr",
    *,
    base_spec: GPUSpec = GTX780,
    vwc_size: int = 8,
    perturbations: tuple[tuple[str, float], ...] = DEFAULT_PERTURBATIONS,
    max_iterations: int = 400,
) -> tuple[float, list[SensitivityResult]]:
    """Baseline speedup plus its value under each perturbed model.

    Returns ``(baseline_speedup, results)``.  A well-behaved model keeps
    every ``result.deviation_from(baseline)`` small relative to the size of
    the perturbation (2x), except for constants that legitimately shift the
    balance (memory bandwidth trades against the issue bound).
    """
    baseline = _speedup(graph, program_name, base_spec,
                        vwc_size=vwc_size, max_iterations=max_iterations)
    results = []
    for field, mult in perturbations:
        spec = dataclasses.replace(
            base_spec, **{field: getattr(base_spec, field) * mult}
        )
        results.append(
            SensitivityResult(
                field,
                mult,
                _speedup(graph, program_name, spec,
                         vwc_size=vwc_size, max_iterations=max_iterations),
            )
        )
    return baseline, results
