"""Global-memory coalescing model.

A warp's 32 lanes issue one memory request each; the memory controller
services the set of distinct ``transaction_bytes``-sized (128 B) aligned
segments those requests touch.  Perfectly coalesced access by a full warp to
4-byte items touches exactly one segment; a random gather can touch up to 32.

The CUDA profiler's *global load/store efficiency* is the ratio of bytes the
program asked for to bytes the controller moved
(``requested / (transactions * 128)``) — the definitions used in the paper's
Table 2 and Figure 8.  This module counts transactions for the three access
shapes the engines produce:

- :func:`gather_transactions` — data-dependent gathers/scatters
  (e.g. ``VertexValues[SrcIndex[e]]`` in VWC-CSR, the CW ``Mapper`` stores);
- :func:`contiguous_transactions` — unit-stride sweeps (shard entries,
  ``VertexValues`` block loads);
- :func:`strided_transactions` — AoS field accesses (for the layout
  ablation).

All counting is vectorized and chunked so multi-million-edge streams fit in
memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TransactionCount",
    "gather_transactions",
    "gather_transactions_segmented",
    "contiguous_transactions",
    "contiguous_transactions_segmented",
    "strided_transactions",
    "segments_rowwise",
]

_CHUNK_ROWS = 1 << 16


@dataclass(frozen=True)
class TransactionCount:
    """Outcome of pricing one access pattern."""

    transactions: int
    bytes_requested: int

    def __add__(self, other: "TransactionCount") -> "TransactionCount":
        return TransactionCount(
            self.transactions + other.transactions,
            self.bytes_requested + other.bytes_requested,
        )

    def efficiency(self, transaction_bytes: int = 128) -> float:
        """Requested bytes over moved bytes (1.0 = perfectly coalesced)."""
        if self.transactions == 0:
            return 1.0
        return self.bytes_requested / (self.transactions * transaction_bytes)


ZERO = TransactionCount(0, 0)


def segments_rowwise(
    segments: np.ndarray, active: np.ndarray | None = None
) -> int:
    """Count distinct values per row of ``segments`` and sum over rows.

    ``segments`` is ``(rows, lanes)`` of non-negative segment ids; ``active``
    masks lanes that issued no request.  The per-row distinct count is the
    number of memory transactions that warp-step costs.
    """
    if segments.size == 0:
        return 0
    seg = segments.astype(np.int64, copy=True)
    if active is not None:
        seg[~active] = -1
    seg.sort(axis=1)
    first = seg[:, 0] >= 0
    fresh = (seg[:, 1:] != seg[:, :-1]) & (seg[:, 1:] >= 0)
    return int(first.sum()) + int(fresh.sum())


def gather_transactions(
    indices: np.ndarray,
    item_bytes: int,
    *,
    active: np.ndarray | None = None,
    warp_size: int = 32,
    transaction_bytes: int = 128,
    base_byte: int = 0,
) -> TransactionCount:
    """Price a data-dependent gather/scatter.

    ``indices[k]`` is the element index accessed by thread ``k``; threads
    are packed into warps in order.  ``active`` marks threads that actually
    issue the access (inactive lanes cost nothing).  Items are assumed
    aligned, so one access touches one segment (true for the 4- and 8-byte
    fields used throughout).
    """
    indices = np.asarray(indices)
    n = indices.size
    if n == 0:
        return ZERO
    if active is None:
        requested = n * item_bytes
    else:
        active = np.asarray(active, dtype=bool)
        if active.shape != indices.shape:
            raise ValueError("active mask must align with indices")
        requested = int(active.sum()) * item_bytes
    transactions = 0
    lanes = warp_size
    for start in range(0, n, _CHUNK_ROWS * lanes):
        stop = min(start + _CHUNK_ROWS * lanes, n)
        chunk = indices[start:stop].astype(np.int64)
        mask = None if active is None else active[start:stop]
        pad = (-chunk.size) % lanes
        if pad:
            chunk = np.concatenate([chunk, np.zeros(pad, dtype=np.int64)])
            m = np.ones(chunk.size, dtype=bool) if mask is None else np.concatenate(
                [mask, np.zeros(pad, dtype=bool)]
            )
            m[-pad:] = False
            mask = m
        seg = (base_byte + chunk * item_bytes) // transaction_bytes
        transactions += segments_rowwise(
            seg.reshape(-1, lanes),
            None if mask is None else mask.reshape(-1, lanes),
        )
    return TransactionCount(transactions, int(requested))


def gather_transactions_segmented(
    indices: np.ndarray,
    item_bytes: int,
    seg_offsets: np.ndarray,
    *,
    warp_size: int = 32,
    transaction_bytes: int = 128,
    base_byte: int = 0,
    per_segment: bool = False,
) -> TransactionCount | tuple[TransactionCount, np.ndarray]:
    """Price many independent gathers in one vectorized pass.

    Segment ``k`` is ``indices[seg_offsets[k] : seg_offsets[k + 1]]`` and is
    priced exactly like a standalone :func:`gather_transactions` call on it:
    threads pack into warps *within* a segment, so warp rows never span
    segment boundaries (each segment is its own thread block / work list).
    The total equals the sum of the per-segment calls; with
    ``per_segment=True`` the per-segment transaction counts are returned as
    well (``(total, per_segment_transactions)``).
    """
    indices = np.asarray(indices)
    seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
    num_segments = seg_offsets.size - 1
    sizes = np.diff(seg_offsets)
    m = int(indices.size)
    if m == 0:
        if per_segment:
            return ZERO, np.zeros(num_segments, dtype=np.int64)
        return ZERO
    seg_id = np.repeat(np.arange(num_segments, dtype=np.int64), sizes)
    rank = np.arange(m, dtype=np.int64) - np.repeat(seg_offsets[:-1], sizes)
    rows_per = -(-sizes // warp_size)
    row_offsets = np.concatenate([[0], np.cumsum(rows_per)])
    row = row_offsets[seg_id] + rank // warp_size
    seg = (base_byte + indices.astype(np.int64) * item_bytes) // transaction_bytes
    order = np.lexsort((seg, row))
    rs, ss = row[order], seg[order]
    new = np.empty(m, dtype=bool)
    new[0] = True
    np.not_equal(rs[1:], rs[:-1], out=new[1:])
    new[1:] |= ss[1:] != ss[:-1]
    total = TransactionCount(int(new.sum()), m * item_bytes)
    if not per_segment:
        return total
    per_seg = np.bincount(seg_id[order][new], minlength=num_segments)
    return total, per_seg


def contiguous_transactions(
    num_items: int,
    item_bytes: int,
    *,
    start_byte: int = 0,
    warp_size: int = 32,
    transaction_bytes: int = 128,
) -> TransactionCount:
    """Price a unit-stride sweep of ``num_items`` items by consecutive threads.

    Each warp-row of 32 consecutive items touches the segments its byte span
    covers; computed analytically (no materialized address array).
    """
    if num_items <= 0:
        return ZERO
    row_bytes = warp_size * item_bytes
    rows = -(-num_items // warp_size)
    row_ids = np.arange(rows, dtype=np.int64)
    lo = start_byte + row_ids * row_bytes
    hi = np.minimum(
        start_byte + (row_ids + 1) * row_bytes,
        start_byte + num_items * item_bytes,
    )
    txs = (hi - 1) // transaction_bytes - lo // transaction_bytes + 1
    return TransactionCount(int(txs.sum()), num_items * item_bytes)


def contiguous_transactions_segmented(
    sizes: np.ndarray,
    item_bytes: int,
    *,
    start_bytes: np.ndarray | None = None,
    warp_size: int = 32,
    transaction_bytes: int = 128,
    per_segment: bool = False,
) -> TransactionCount | tuple[TransactionCount, np.ndarray]:
    """Price many unit-stride sweeps in one vectorized pass.

    Window ``k`` covers ``sizes[k]`` items starting at byte
    ``start_bytes[k]`` and is priced exactly like a standalone
    :func:`contiguous_transactions` call (warp rows never span windows).
    ``per_segment=True`` additionally returns per-window transaction counts.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    num = sizes.size
    if start_bytes is None:
        start_bytes = np.zeros(num, dtype=np.int64)
    else:
        start_bytes = np.asarray(start_bytes, dtype=np.int64)
    rows_per = np.maximum(sizes, 0)
    rows_per = -(-rows_per // warp_size)
    total_rows = int(rows_per.sum())
    requested = int(np.maximum(sizes, 0).sum()) * item_bytes
    if total_rows == 0:
        if per_segment:
            return ZERO, np.zeros(num, dtype=np.int64)
        return ZERO
    row_offsets = np.concatenate([[0], np.cumsum(rows_per)])
    win = np.repeat(np.arange(num, dtype=np.int64), rows_per)
    local = np.arange(total_rows, dtype=np.int64) - row_offsets[win]
    row_bytes = warp_size * item_bytes
    lo = start_bytes[win] + local * row_bytes
    hi = np.minimum(
        start_bytes[win] + (local + 1) * row_bytes,
        start_bytes[win] + sizes[win] * item_bytes,
    )
    txs = (hi - 1) // transaction_bytes - lo // transaction_bytes + 1
    total = TransactionCount(int(txs.sum()), requested)
    if not per_segment:
        return total
    per = np.bincount(win, weights=txs, minlength=num).astype(np.int64)
    return total, per


def strided_transactions(
    num_items: int,
    stride_bytes: int,
    item_bytes: int,
    *,
    start_byte: int = 0,
    warp_size: int = 32,
    transaction_bytes: int = 128,
) -> TransactionCount:
    """Price a constant-stride sweep (AoS field access; layout ablation).

    Thread ``k`` reads ``item_bytes`` at ``start + k * stride_bytes``.  With
    ``stride_bytes == item_bytes`` this degenerates to
    :func:`contiguous_transactions`.
    """
    if num_items <= 0:
        return ZERO
    if stride_bytes == item_bytes:
        return contiguous_transactions(
            num_items,
            item_bytes,
            start_byte=start_byte,
            warp_size=warp_size,
            transaction_bytes=transaction_bytes,
        )
    row_span = warp_size * stride_bytes
    rows = -(-num_items // warp_size)
    row_ids = np.arange(rows, dtype=np.int64)
    items_in_row = np.minimum(num_items - row_ids * warp_size, warp_size)
    lo = start_byte + row_ids * row_span
    hi = lo + (items_in_row - 1) * stride_bytes + item_bytes
    txs = (hi - 1) // transaction_bytes - lo // transaction_bytes + 1
    return TransactionCount(int(txs.sum()), num_items * item_bytes)
