"""Hardware parameter sheets for the performance model.

:data:`GTX780` matches the paper's evaluation machine (section 5): a GeForce
GTX 780 (Kepler GK110: 12 SMX units, 48 KB shared memory per SMX, 288.4 GB/s
GDDR5) paired with an Intel Core i7-3930K (Sandy Bridge-E, 6 cores / 12
hardware threads at 3.2 GHz) over PCIe 3.0 x16.

Absolute latencies/bandwidths are published figures; where a microbenchmark
would normally calibrate a constant (kernel launch overhead, atomic
throughput) we use values typical of the era and document them here.  The
reproduction's claims are about *ratios* between representations, which are
insensitive to these constants.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PCIeSpec", "GPUSpec", "CPUSpec", "GTX780", "I7_3930K"]


@dataclass(frozen=True)
class PCIeSpec:
    """Host-device interconnect model."""

    bandwidth_gb_per_s: float = 12.0
    """Achievable PCIe 3.0 x16 throughput (~12 GB/s of the 15.75 GB/s peak)."""

    latency_us: float = 10.0
    """Fixed per-transfer setup cost."""


@dataclass(frozen=True)
class GPUSpec:
    """SIMT device model (defaults are GTX 780 / GK110 values)."""

    name: str = "GeForce GTX 780 (modeled)"
    num_sms: int = 12
    warp_size: int = 32
    clock_ghz: float = 0.863
    mem_bandwidth_gb_per_s: float = 288.4
    transaction_bytes: int = 128
    """Store granularity: stores write-allocate a full L2 line."""

    load_sector_bytes: int = 32
    """Load granularity: Kepler global loads are serviced in 32-byte L2
    sectors, which is the granularity nvprof's ``gld_efficiency`` uses."""

    shared_mem_per_sm_bytes: int = 48 * 1024
    max_blocks_per_sm: int = 16
    max_threads_per_sm: int = 2048
    max_threads_per_block: int = 1024
    issue_slots_per_sm_per_cycle: float = 4.0
    """Kepler SMX has four warp schedulers."""

    kernel_launch_overhead_us: float = 6.0
    """Per-kernel-launch host+driver overhead (the paper launches one kernel
    per iteration, so this bounds very fast iterations)."""

    shared_atomic_cycles: float = 6.0
    """Amortized cost of one shared-memory atomic (low contention, §4)."""

    global_atomic_cycles: float = 120.0
    """Amortized cost of one global-memory atomic."""

    dram_latency_cycles: float = 400.0
    """Used as a latency floor for kernels with trivial traffic."""

    @property
    def bytes_per_cycle(self) -> float:
        """DRAM bytes deliverable per core-clock cycle."""
        return self.mem_bandwidth_gb_per_s / self.clock_ghz

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size


@dataclass(frozen=True)
class CPUSpec:
    """Multicore host model (defaults are Core i7-3930K values).

    The paper calls the machine "12 cores (hyper-threading enabled)"; the
    i7-3930K is physically 6 cores / 12 hardware threads, which is what the
    ``cores`` / ``smt_ways`` split encodes.
    """

    name: str = "Intel Core i7-3930K (modeled)"
    cores: int = 6
    smt_ways: int = 2
    clock_ghz: float = 3.2
    mem_bandwidth_gb_per_s: float = 51.2
    cache_line_bytes: int = 64
    llc_bytes: int = 12 * 1024 * 1024
    smt_yield: float = 0.3
    """Fraction of an extra core one SMT sibling is worth (memory-bound
    graph code gains little from hyper-threading)."""

    oversubscribe_penalty: float = 0.02
    """Per-extra-software-thread scheduling overhead once threads exceed
    hardware contexts."""

    sync_overhead_us_per_thread: float = 1.5
    """Per-iteration barrier cost, linear in thread count."""

    edge_cycles: float = 14.0
    """Issue cost of processing one incoming edge (load + compare + update)."""

    vertex_cycles: float = 10.0
    """Issue cost of the per-vertex prologue/epilogue."""

    def effective_parallelism(self, threads: int) -> float:
        """Speedup factor a ``threads``-way run achieves over one thread."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        hw = min(threads, self.cores)
        extra = min(max(threads - self.cores, 0), self.cores * (self.smt_ways - 1))
        par = hw + extra * self.smt_yield
        over = max(threads - self.cores * self.smt_ways, 0)
        return par / (1.0 + self.oversubscribe_penalty * over)


GTX780 = GPUSpec()
"""The paper's GPU, with default model constants."""

I7_3930K = CPUSpec()
"""The paper's host CPU, with default model constants."""
