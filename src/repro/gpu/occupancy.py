"""Block/SM occupancy model (paper section 4, "Selecting shard size").

CuSha sizes shards so the per-block shared-memory footprint
(``N * sizeof(Vertex)``) lets the desired number of blocks co-reside on an
SM.  :func:`blocks_per_sm` applies the standard CUDA occupancy limits
(shared memory, thread count, hardware block cap); :func:`occupancy` turns
that into the resident-warp ratio the profiler reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.spec import GPUSpec

__all__ = [
    "OccupancyReport",
    "blocks_per_sm",
    "occupancy",
    "occupancy_report",
    "shared_mem_per_block",
]


def shared_mem_per_block(
    vertices_per_shard: int, vertex_value_bytes: int, extra_bytes: int = 64
) -> int:
    """Shared memory one CuSha block needs: the local vertex array plus the
    handful of control flags in Figure 5 (``values_updated`` etc.)."""
    return vertices_per_shard * vertex_value_bytes + extra_bytes


def blocks_per_sm(
    spec: GPUSpec, shared_bytes_per_block: int, threads_per_block: int
) -> int:
    """Resident blocks per SM under the shared-memory / thread / block caps."""
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if threads_per_block > spec.max_threads_per_block:
        return 0
    limits = [spec.max_blocks_per_sm, spec.max_threads_per_sm // threads_per_block]
    if shared_bytes_per_block > 0:
        limits.append(spec.shared_mem_per_sm_bytes // shared_bytes_per_block)
    return max(0, min(limits))


def occupancy(
    spec: GPUSpec, shared_bytes_per_block: int, threads_per_block: int
) -> float:
    """Resident warps over the SM's maximum warps (CUDA occupancy)."""
    blocks = blocks_per_sm(spec, shared_bytes_per_block, threads_per_block)
    warps_per_block = -(-threads_per_block // spec.warp_size)
    return min(1.0, blocks * warps_per_block / spec.max_warps_per_sm)


@dataclass(frozen=True)
class OccupancyReport:
    """Static occupancy prediction for one shard-size configuration.

    ``fits`` is False when zero blocks co-reside on an SM — the kernel
    cannot launch as configured (``P302`` in the perf auditor).
    """

    shared_bytes_per_block: int
    blocks_per_sm: int
    occupancy: float

    @property
    def fits(self) -> bool:
        return self.blocks_per_sm > 0


def occupancy_report(
    spec: GPUSpec,
    vertices_per_shard: int,
    vertex_value_bytes: int,
    threads_per_block: int,
) -> OccupancyReport:
    """Predict a CuSha block's occupancy from its shard configuration
    alone — the static side of the section-4 shard-size selection."""
    shared = shared_mem_per_block(vertices_per_shard, vertex_value_bytes)
    return OccupancyReport(
        shared_bytes_per_block=shared,
        blocks_per_sm=blocks_per_sm(spec, shared, threads_per_block),
        occupancy=occupancy(spec, shared, threads_per_block),
    )
