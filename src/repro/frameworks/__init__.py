"""Processing engines.

Four engines execute :class:`~repro.vertexcentric.program.VertexProgram`
instances:

- :class:`repro.frameworks.cusha.CuShaEngine` — the paper's contribution;
  ``mode="gs"`` uses G-Shards, ``mode="cw"`` Concatenated Windows.  The two
  modes compute identical values (CW only reorders the write-back work) and
  differ in the hardware activity they induce.
- :class:`repro.frameworks.vwc.VWCEngine` — the Virtual Warp-Centric
  CSR baseline (paper Appendix A), virtual warp sizes 2..32.
- :class:`repro.frameworks.mtcpu.MTCPUEngine` — the multithreaded CPU CSR
  baseline, 1..128 threads.
- :class:`repro.frameworks.scalar.ScalarReferenceEngine` — a slow,
  loop-based executor of the paper's scalar device functions; the oracle the
  vectorized engines are tested against.
- :class:`repro.frameworks.streamed.StreamedCuShaEngine` — the paper's
  future-work extension: out-of-core processing with overlapped
  transfer/compute streams.

All engines return a :class:`repro.frameworks.base.RunResult` with the final
vertex values, per-iteration traces, aggregated hardware statistics, and
simulated times.

Engines are usually instantiated through the registry factory::

    from repro.frameworks import make_engine

    engine = make_engine("cusha-cw", shard_size=64)
    result = engine.run(graph, program, config=RunConfig(max_iterations=100))
"""

from repro.errors import ConvergenceError
from repro.frameworks.base import (Engine, IterationTrace, RunConfig,
                                   RunResult)
from repro.frameworks.cusha import CuShaEngine
from repro.frameworks.vwc import VWCEngine
from repro.frameworks.mtcpu import MTCPUEngine
from repro.frameworks.scalar import ScalarReferenceEngine
from repro.frameworks.streamed import StreamedCuShaEngine
from repro.frameworks.registry import (EngineKeyError, engine_keys,
                                       make_engine, register_engine)

__all__ = [
    "Engine",
    "IterationTrace",
    "RunConfig",
    "RunResult",
    "CuShaEngine",
    "VWCEngine",
    "MTCPUEngine",
    "ScalarReferenceEngine",
    "StreamedCuShaEngine",
    "make_engine",
    "engine_keys",
    "register_engine",
    "EngineKeyError",
    "ConvergenceError",
]
