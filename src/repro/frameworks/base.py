"""Engine interface and result records.

Engines compute **real vertex values** — every iteration executes the
program's vectorized kernels on actual data, and convergence is the
program's own fixpoint condition — while simultaneously accounting the
hardware activity the access patterns would generate on the modeled device.
The returned :class:`RunResult` therefore carries both the answer (validated
against golden references in the test-suite) and the paper's performance
quantities (times, efficiencies, TEPS).

The driver contract is ``engine.run(graph, program, config=RunConfig(...))``.
The PR-1 deprecation shim that accepted loose keyword arguments
(``max_iterations=``, ``allow_partial=``, ``collect_traces=``) is retired:
passing them now raises a :class:`TypeError` pointing at
:class:`RunConfig`.  Engines themselves implement :meth:`Engine._run` and
only ever see the config object.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.errors import ConfigError, ConvergenceError
from repro.graph.digraph import DiGraph
from repro.gpu.stats import KernelStats
from repro.telemetry.tracer import NULL_TRACER
from repro.vertexcentric.program import VertexProgram

__all__ = [
    "IterationTrace",
    "FaultHooks",
    "NULL_FAULTS",
    "RunConfig",
    "RunResult",
    "Engine",
    "ConvergenceError",
]


class FaultHooks:
    """Fault-injection hook points engines call at fixed sites.

    This base class is the zero-overhead no-op: every hook returns
    immediately and ``active`` is ``False``, so the default
    :data:`NULL_FAULTS` adds one attribute read per site and nothing else.
    :class:`repro.resilience.FaultPlan` subclasses it to fire simulated GPU
    faults (raising :class:`repro.resilience.InjectedFault` subclasses) at
    deterministic, seed-driven points.

    The hook sites are the contract that keeps fault injection identical
    across the ``fast`` and ``reference`` execution paths: engines call
    hooks only at per-launch, per-transfer, and per-iteration boundaries —
    never inside per-wave or per-shard inner loops — so both paths reach
    exactly the same ``(engine, kind, site, iteration)`` fault sites.

    Hooks:

    - :meth:`launch` — once per run, before the first kernel launch, with
      the requested shared-memory footprint (simulated shared-memory OOM).
    - :meth:`transfer` — around each bulk PCIe direction, ``which`` in
      ``("h2d", "d2h")`` (transient transfer faults).
    - :meth:`kernel` — at the top of each iteration, before any stage runs
      (kernel aborts; ``exec_path`` lets a fault target only one path).
    - :meth:`values` — at the end of each iteration with the live
      VertexValues array (simulated uncorrectable ECC bit-flips).
    - :meth:`representations` — once per run from :meth:`Engine.run`,
      before :meth:`Engine._run` (bit-flips in the device copy of a
      shard/CW/CSR representation).
    - :meth:`device` — at the top of each iteration, immediately after
      :meth:`kernel`, only when the run is multi-device (simulated device
      loss at an iteration boundary; ``placement`` is the live
      :class:`repro.placement.Placement`).
    """

    active: bool = False

    def launch(self, engine: str, shared_bytes: int, limit_bytes: int) -> None:
        """Hook before the first kernel launch of a run."""

    def transfer(self, engine: str, which: str) -> None:
        """Hook before a bulk host-device transfer (``h2d`` or ``d2h``)."""

    def kernel(self, engine: str, iteration: int, exec_path: str) -> None:
        """Hook at the top of iteration ``iteration`` (1-based, absolute)."""

    def values(self, engine: str, iteration: int, values: np.ndarray) -> None:
        """Hook after iteration ``iteration`` with the live VertexValues."""

    def representations(self, engine, graph, program, config) -> None:
        """Hook over the representations a run is about to execute."""

    def device(
        self, engine: str, iteration: int, exec_path: str, placement
    ) -> None:
        """Hook at the top of iteration ``iteration`` on multi-device runs."""


NULL_FAULTS = FaultHooks()


#: Declarative :class:`RunConfig` compatibility table: ``(knob, predicate,
#: message)`` rows checked in order at construction.  A predicate returning
#: ``True`` means the combination is invalid and construction raises
#: :class:`~repro.errors.ConfigError` (a ``ValueError`` subclass, so legacy
#: ``except ValueError`` callers keep working).  Keeping the rules in one
#: table — rather than scattered ``if``/``raise`` pairs — makes the set of
#: invalid knob combinations auditable and exhaustively testable.
_INVALID_COMBOS: tuple[tuple[str, Callable, str], ...] = (
    ("exec_path",
     lambda c: c.exec_path not in ("fast", "reference"),
     "exec_path must be 'fast' or 'reference'"),
    ("frontier",
     lambda c: c.frontier not in ("off", "sparse", "auto"),
     "frontier must be 'off', 'sparse', or 'auto'"),
    ("validate",
     lambda c: c.validate not in ("off", "structure", "full", "perf"),
     "validate must be 'off', 'structure', 'full', or 'perf'"),
    ("certify",
     lambda c: c.certify not in ("off", "warn", "enforce"),
     "certify must be 'off', 'warn', or 'enforce'"),
    ("start_iteration",
     lambda c: c.start_iteration < 0,
     "start_iteration must be >= 0"),
    ("start_iteration",
     lambda c: c.start_iteration >= c.max_iterations,
     "start_iteration must be below max_iterations"),
    ("resume_frontier",
     lambda c: c.resume_frontier is not None and c.resume_values is None,
     "resume_frontier requires resume_values (the frontier mask only "
     "makes sense relative to a checkpointed state)"),
    ("resume_frontier",
     lambda c: c.resume_frontier is not None and c.frontier == "off",
     "resume_frontier requires a frontier mode ('sparse' or 'auto'); a "
     "full-sweep run has no dirty bitmap to rebuild"),
    ("start_iteration",
     lambda c: c.resume_values is None and bool(c.start_iteration),
     "start_iteration requires resume_values (the checkpointed "
     "VertexValues to warm-start from)"),
    ("certify",
     lambda c: c.certify == "enforce" and c.validate == "off",
     "certify='enforce' requires validate != 'off' (the certificate "
     "verdicts are surfaced through the analysis preflight it gates)"),
    ("narrow",
     lambda c: c.narrow not in ("off", "auto"),
     "narrow must be 'off' or 'auto'"),
    ("devices",
     lambda c: c.devices < 1,
     "devices must be >= 1"),
    ("placement",
     lambda c: c.placement is not None and c.devices < 2,
     "placement requires devices >= 2 (a single-device run has no "
     "unit->device assignment to honor)"),
    ("placement",
     lambda c: c.placement is not None
     and getattr(c.placement, "num_devices", None) != c.devices,
     "placement.num_devices must equal devices"),
)


@dataclass(frozen=True)
class IterationTrace:
    """One iteration's footprint (drives the paper's Figure 7)."""

    iteration: int
    updated_vertices: int
    time_ms: float
    cumulative_time_ms: float
    active_shards: int = 0
    """Shards (chunks for VWC) the iteration actually processed.  Only
    populated under a frontier mode (``0`` when ``frontier="off"``, where
    every iteration sweeps all shards), so historical traces are
    unchanged."""


@dataclass(frozen=True)
class RunConfig:
    """Immutable per-run settings shared by every engine.

    ``tracer`` defaults to the zero-overhead :data:`~repro.telemetry.NULL_TRACER`;
    pass a :class:`~repro.telemetry.Tracer` to collect spans and metrics.

    ``exec_path`` selects between the wave-batched vectorized core
    (``"fast"``, the default) and the original per-shard loop
    (``"reference"``) in the engines that implement both; the two paths are
    equivalence-gated to byte-identical results.  Engines with a single
    path ignore it.

    ``validate`` gates the :mod:`repro.analysis` preflight: ``"off"`` (the
    default) skips it entirely, ``"structure"`` lints the program and
    structurally validates the representations the engine will execute
    over, ``"full"`` additionally runs the simulated-race detector, and
    ``"perf"`` runs the structural checks plus the static performance
    auditor (``P3xx`` codes; see ``docs/analysis.md`` for the overhead of
    each level).  Error violations abort the run with
    :class:`~repro.analysis.violations.ValidationError` before any engine
    state is touched.

    ``faults`` defaults to the no-op :data:`NULL_FAULTS`; pass a
    :class:`repro.resilience.FaultPlan` to arm deterministic fault
    injection at the :class:`FaultHooks` sites.

    ``resume_values`` / ``start_iteration`` warm-start an engine from a
    checkpoint: the engine copies ``resume_values`` instead of calling
    ``program.initial_values`` and numbers iterations from
    ``start_iteration + 1`` (absolute numbering, so fault sites and traces
    line up with an uninterrupted run).  ``max_iterations`` stays the
    *absolute* cap; a segmented supervisor raises it per segment.

    ``frontier`` selects work-efficient sweeps: ``"off"`` (the default)
    runs the historical full sweep every iteration; ``"sparse"`` keeps a
    per-shard/per-chunk dirty bitmap and skips quiescent shards entirely
    (bit-exact values, traces, and iteration counts — only the modeled
    hardware work shrinks); ``"auto"`` additionally picks a push (sparse
    gather) or pull (dense sweep) direction each iteration from the
    frontier-size × average-degree heuristic.  Engines without shard
    structure (``scalar``, ``mtcpu``) treat any mode as ``"off"``.
    ``resume_frontier`` carries the checkpointed updated-vertex mask of
    the last executed iteration so a segmented frontier run rebuilds the
    exact dirty set a continuous run would hold (see
    ``repro.frameworks.frontier.resume_dirty``).

    ``certify`` gates the kernel property certifier
    (:mod:`repro.analysis.certify`): ``"off"`` (the default) never
    consults certificates; ``"warn"`` checks the program's ``C4xx``
    certificates whenever a fast path relies on them (frontier sweeps,
    async engines, service batching) and *degrades to the safe full-sweep
    path* with a recorded ``F407`` event when a required check is not
    ``PROVED``; ``"enforce"`` raises
    :class:`~repro.errors.CertificationError` instead of degrading.

    ``narrow`` gates proven-safe dtype narrowing
    (:mod:`repro.frameworks.narrow`): ``"off"`` (the default) runs at the
    declared widths; ``"auto"`` consults the range certificates
    (:mod:`repro.analysis.ranges`) and, when W501/W504 prove a field
    exact at a narrower dtype, runs with narrowed ``VertexValues`` and
    message buffers — the cost model charges the narrowed bytes while
    the final values are widened back, so results stay bit-exact against
    ``narrow="off"``.  Programs with no provable plan run unchanged.

    ``devices`` / ``placement`` select multi-device execution: with
    ``devices=N`` (N > 1) the sharded engines split each iteration's
    modeled kernel time across N simulated devices and charge a
    bulk-synchronous value-exchange step between iterations, surfacing
    per-device spans and ``placement.*`` metrics (see
    :mod:`repro.placement`).  Vertex values, iteration counts, and traces'
    update counts are bit-exact against ``devices=1`` — only the modeled
    times and exchange accounting change.  ``placement`` optionally pins
    an explicit :class:`repro.placement.Placement` (its ``num_devices``
    must equal ``devices``); by default a deterministic block partition of
    the engine's shards/chunks is used.  Engines without shard structure
    (``scalar``, ``mtcpu``) ignore both knobs.

    Construction validates knob values and cross-knob compatibility
    against the :data:`_INVALID_COMBOS` table, raising
    :class:`~repro.errors.ConfigError` (a ``ValueError``) on the first
    violated rule.
    """

    max_iterations: int = 10_000
    allow_partial: bool = False
    collect_traces: bool = True
    tracer: object = NULL_TRACER
    exec_path: str = "fast"
    validate: str = "off"
    faults: FaultHooks = field(default=NULL_FAULTS, compare=False)
    resume_values: np.ndarray | None = field(
        default=None, compare=False, repr=False
    )
    start_iteration: int = 0
    frontier: str = "off"
    resume_frontier: np.ndarray | None = field(
        default=None, compare=False, repr=False
    )
    certify: str = "off"
    narrow: str = "off"
    devices: int = 1
    placement: object = None

    def __post_init__(self) -> None:
        for knob, bad, message in _INVALID_COMBOS:
            if bad(self):
                raise ConfigError(message, knob=knob)

    def with_tracer(self, tracer) -> "RunConfig":
        return replace(self, tracer=tracer)

    def initial_values(self, graph: DiGraph, program: VertexProgram):
        """The VertexValues an engine starts from under this config.

        A fresh run gets ``program.initial_values(graph)``; a warm-started
        run gets a private mutable copy of ``resume_values`` (checkpoint
        snapshots are frozen in the cache, so engines must never write
        through the original).
        """
        if self.resume_values is None:
            return program.initial_values(graph)
        return np.array(self.resume_values, copy=True)


@dataclass
class RunResult:
    """Everything one engine run produced."""

    engine: str
    program: str
    values: np.ndarray
    iterations: int
    converged: bool
    kernel_time_ms: float
    h2d_ms: float
    d2h_ms: float
    representation_bytes: int
    stats: KernelStats
    traces: list[IterationTrace] = field(default_factory=list)
    num_edges: int = 0
    stage_stats: dict[str, KernelStats] | None = None
    """Per-pipeline-stage breakdown of :attr:`stats` (engines that track
    stages populate it; keys are engine-specific stage names).  Kept for
    compatibility — the tracer's ``stage`` spans carry the same breakdown
    plus per-iteration resolution and standalone modeled times."""
    exec_path: str = ""
    """The execution path this run actually used (``config.exec_path``
    for dual-path engines, ``"reference"`` for single-path ones), so
    downstream comparisons — the ``perfgate`` baseline check above all —
    never diff a fast run against a reference one."""
    cache_hits: int = 0
    cache_misses: int = 0
    """Representation-cache hit/miss deltas attributable to this run
    (both 0 when no cache was configured).  Recorded unconditionally —
    unlike the ``cache.*`` metrics, which need a live tracer."""
    completed: bool = True
    """``False`` when the run was cut short mid-stream — e.g. the
    resilience supervisor exhausted its degradation ladder and returned
    the last checkpointed state.  In that case :attr:`iterations` is the
    *partial* count actually reflected in :attr:`values` (never a stale
    pre-abort number) and :attr:`converged` is ``False``.  Engines that
    finish their loop normally — converged, or capped with
    ``allow_partial`` — report ``True``."""
    edges_processed: int = 0
    """Exact count of shard/chunk entries the frontier-gated sweeps
    actually processed, summed over the run.  ``0`` when
    ``frontier="off"`` (the full sweep does not count, keeping legacy
    results byte-identical); surfaced as the ``frontier.edges_processed``
    metric."""
    shards_skipped: int = 0
    """Exact count of shard-sweeps (chunk-sweeps for VWC) skipped because
    the shard was quiescent, summed over the run.  ``0`` when
    ``frontier="off"``; surfaced as ``frontier.shards_skipped``."""
    frontier_mask: np.ndarray | None = None
    """``(num_vertices,)`` bool mask of vertices updated by the *last
    executed iteration* when a frontier mode is active (``None`` under
    ``frontier="off"``).  This is the checkpoint payload that lets a
    segmented frontier run resume bit-identically — see
    ``RunConfig.resume_frontier``."""
    devices: int = 1
    """Simulated devices the run executed on (``RunConfig.devices``; a
    repartitioned recovery reports the maximum the stitched run saw)."""
    exchange_bytes: int = 0
    """Total bytes the bulk-synchronous value-exchange steps moved across
    the interconnect.  ``0`` on single-device runs; surfaced as the
    ``placement.exchange_bytes`` metric."""
    exchange_ms: float = 0.0
    """Modeled milliseconds of the exchange steps (already included in
    :attr:`kernel_time_ms`, which holds the multi-device iteration times);
    surfaced as ``placement.exchange_ms``."""

    @property
    def total_ms(self) -> float:
        """End-to-end time including host-device transfers (the quantity the
        paper reports in Table 4)."""
        return self.kernel_time_ms + self.h2d_ms + self.d2h_ms

    @property
    def teps(self) -> float:
        """Traversed edges per second, ``|E| / total_time`` (Table 7).

        Edge cases are explicit: a zero-edge graph traverses nothing, so
        TEPS is ``0.0`` no matter how long transfers took; a run with edges
        but zero modeled time (e.g. the scalar oracle, which models no
        hardware) is reported as ``inf`` rather than silently ``0.0``.
        """
        if self.num_edges == 0:
            return 0.0
        if self.total_ms <= 0:
            return float("inf")
        return self.num_edges / (self.total_ms / 1e3)

    def field_values(self, name: str | None = None) -> np.ndarray:
        """Convenience accessor: one plain array of the (first) value field."""
        if name is None:
            name = self.values.dtype.names[0]
        return self.values[name]


class Engine(ABC):
    """Common driver contract.

    :meth:`run` must execute ``program`` on ``graph`` until the program
    reports no updates (or ``config.max_iterations`` is hit, raising
    :class:`ConvergenceError` unless ``config.allow_partial``).  Subclasses
    implement :meth:`_run`; the public :meth:`run` accepts only a
    normalized :class:`RunConfig`.
    """

    name: str = "engine"

    def run(
        self,
        graph: DiGraph,
        program: VertexProgram,
        *,
        config: RunConfig | None = None,
        tracer=None,
        **legacy,
    ) -> RunResult:
        """Execute ``program`` to convergence and return the result.

        Pass settings via ``config=RunConfig(...)``.  ``tracer=`` is an
        accepted shorthand for ``config=RunConfig(tracer=...)``.  The PR-1
        loose keywords (``max_iterations=`` and friends) are gone; passing
        any unknown keyword raises :class:`TypeError` naming the fix.
        """
        if legacy:
            raise TypeError(
                f"Engine.run() got unexpected keyword argument(s) "
                f"{', '.join(sorted(legacy))}; the legacy loose-kwargs form "
                "was removed — pass config=RunConfig("
                f"{', '.join(f'{k}=...' for k in sorted(legacy))}) instead"
            )
        if config is None:
            config = RunConfig()
        if tracer is not None:
            config = config.with_tracer(tracer)
        if config.resume_values is not None and (
            len(config.resume_values) != graph.num_vertices
        ):
            raise ValueError(
                "resume_values has "
                f"{len(config.resume_values)} entries for a graph with "
                f"{graph.num_vertices} vertices"
            )
        if config.resume_frontier is not None and (
            len(config.resume_frontier) != graph.num_vertices
        ):
            raise ValueError(
                "resume_frontier has "
                f"{len(config.resume_frontier)} entries for a graph with "
                f"{graph.num_vertices} vertices"
            )
        if config.validate != "off":
            # Imported here: repro.analysis depends on the graph and
            # vertexcentric layers, and must stay optional on the hot path.
            from repro.analysis.preflight import preflight

            preflight(self, graph, program, config)
        if config.certify != "off":
            # The kernel certifier gates the fast paths that silently
            # assume the program's algebra (frontier sweeps, async
            # engines).  "enforce" raises CertificationError; "warn"
            # returns a degraded (full-sweep) config with an F407 event.
            from repro.analysis.certify import runtime_gate

            config = runtime_gate(self, program, config)
        widen_back = None
        if config.narrow != "off":
            # Proven-safe dtype narrowing: when the range certificates
            # justify it, run with a NarrowedProgram (narrow storage,
            # wide computation) and widen the final values back.
            from repro.frameworks.narrow import narrow_gate

            program, config, widen_back = narrow_gate(
                self, graph, program, config
            )
        if config.faults.active:
            config.faults.representations(self, graph, program, config)
        result = self._run(graph, program, config)
        if widen_back is not None:
            result.values = widen_back(result.values)
        return result

    @abstractmethod
    def _run(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig
    ) -> RunResult:
        """Engine-specific execution under a normalized :class:`RunConfig`."""

    def preflight_representations(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig
    ) -> tuple:
        """Representations a validation-enabled run structurally checks.

        Engines override this to expose the structures their :meth:`_run`
        is about to execute over (ideally built through the same
        representation cache, so the preflight warms rather than
        duplicates the build).  The default reports none.
        """
        return ()

    def predicted_stage_stats(
        self, graph: DiGraph, program: VertexProgram
    ) -> dict[str, KernelStats]:
        """Static per-sweep hardware stats, keyed by stage-span name.

        The contract: for every returned stage, one iteration's traced
        ``stage`` span must carry exactly these stats on the counters the
        static model covers (the perf auditor's drift gate enforces it).
        Engines that model no GPU hardware return an empty mapping — the
        default.
        """
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
