"""Engine interface and result records.

Engines compute **real vertex values** — every iteration executes the
program's vectorized kernels on actual data, and convergence is the
program's own fixpoint condition — while simultaneously accounting the
hardware activity the access patterns would generate on the modeled device.
The returned :class:`RunResult` therefore carries both the answer (validated
against golden references in the test-suite) and the paper's performance
quantities (times, efficiencies, TEPS).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.graph.digraph import DiGraph
from repro.gpu.stats import KernelStats
from repro.vertexcentric.program import VertexProgram

__all__ = ["IterationTrace", "RunResult", "Engine", "ConvergenceError"]


class ConvergenceError(RuntimeError):
    """Raised when an engine exhausts ``max_iterations`` without converging."""


@dataclass(frozen=True)
class IterationTrace:
    """One iteration's footprint (drives the paper's Figure 7)."""

    iteration: int
    updated_vertices: int
    time_ms: float
    cumulative_time_ms: float


@dataclass
class RunResult:
    """Everything one engine run produced."""

    engine: str
    program: str
    values: np.ndarray
    iterations: int
    converged: bool
    kernel_time_ms: float
    h2d_ms: float
    d2h_ms: float
    representation_bytes: int
    stats: KernelStats
    traces: list[IterationTrace] = field(default_factory=list)
    num_edges: int = 0
    stage_stats: dict[str, KernelStats] | None = None
    """Per-pipeline-stage breakdown of :attr:`stats` (engines that track
    stages populate it; keys are engine-specific stage names)."""

    @property
    def total_ms(self) -> float:
        """End-to-end time including host-device transfers (the quantity the
        paper reports in Table 4)."""
        return self.kernel_time_ms + self.h2d_ms + self.d2h_ms

    @property
    def teps(self) -> float:
        """Traversed edges per second, ``|E| / total_time`` (Table 7)."""
        if self.total_ms <= 0:
            return 0.0
        return self.num_edges / (self.total_ms / 1e3)

    def field_values(self, name: str | None = None) -> np.ndarray:
        """Convenience accessor: one plain array of the (first) value field."""
        if name is None:
            name = self.values.dtype.names[0]
        return self.values[name]


class Engine(ABC):
    """Common driver contract.

    ``run`` must execute ``program`` on ``graph`` until the program reports
    no updates (or ``max_iterations`` is hit, raising
    :class:`ConvergenceError` unless ``allow_partial``).
    """

    name: str = "engine"

    @abstractmethod
    def run(
        self,
        graph: DiGraph,
        program: VertexProgram,
        *,
        max_iterations: int = 10_000,
        allow_partial: bool = False,
        collect_traces: bool = True,
    ) -> RunResult:
        """Execute ``program`` to convergence and return the result."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
