"""Shared CSR iteration machinery for the VWC and MTCPU baselines.

Both baselines walk the same incoming-edge CSR with the same semantics: the
vertex set is processed in contiguous chunks; within a chunk values are
computed from the *live* ``VertexValues`` array and applied at chunk end
(chunked Gauss–Seidel).  This matches Figure 14, where vertex updates land
directly in the single-version ``VertexValues`` and become visible to
concurrently running virtual warps — the reason the paper's Figure 7 shows
CSR converging in fewer (but slower) iterations than CuSha's multi-version
shards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache import graph_fingerprint, resolve_cache
from repro.graph.csr import CSR
from repro.graph.digraph import DiGraph
from repro.vertexcentric.program import VertexProgram, apply_reductions

__all__ = ["CSRProblem", "run_chunk", "iterate_chunks"]


@dataclass
class CSRProblem:
    """CSR arrays plus program data, ready to iterate."""

    csr: CSR
    program: VertexProgram
    vertex_values: np.ndarray
    static_values: np.ndarray | None
    edge_values: np.ndarray | None  # CSR slot order
    destinations: np.ndarray  # per CSR slot, int64

    @classmethod
    def build(
        cls, graph: DiGraph, program: VertexProgram, cache=None
    ) -> "CSRProblem":
        """Assemble the problem, memoizing the structural pieces.

        The CSR arrays and the per-slot destination map depend only on the
        graph's topology, so they are cached by fingerprint (see
        :mod:`repro.cache`); the value arrays depend on the program and the
        graph's weights and are always built fresh.  ``cache=False``
        disables the memo.
        """
        resolved = resolve_cache(cache)
        if resolved is not None:
            fp = graph_fingerprint(graph)
            csr = resolved.get(("csr", fp), lambda: CSR.from_graph(graph))
            destinations = resolved.get(
                ("csr-dest", fp),
                lambda: csr.destinations().astype(np.int64),
            )
        else:
            csr = CSR.from_graph(graph)
            destinations = csr.destinations().astype(np.int64)
        ev = program.edge_values(graph)
        return cls(
            csr=csr,
            program=program,
            vertex_values=program.initial_values(graph),
            static_values=program.static_values(graph),
            edge_values=None if ev is None else csr.gather_edge_values(ev),
            destinations=destinations,
        )


def run_chunk(problem: CSRProblem, a: int, b: int) -> tuple[np.ndarray, int]:
    """Process vertices ``[a, b)``; apply updates in place.

    Returns ``(updated_vertex_indices, reduction_ops)``.
    """
    prog = problem.program
    vv = problem.vertex_values
    lo = int(problem.csr.in_edge_idxs[a])
    hi = int(problem.csr.in_edge_idxs[b])
    old = vv[a:b]
    local = prog.init_local(old)
    ops = 0
    if hi > lo:
        srcs = problem.csr.src_indxs[lo:hi].astype(np.int64)
        dests = problem.destinations[lo:hi]
        msgs, mask = prog.messages(
            vv[srcs],
            None if problem.static_values is None else problem.static_values[srcs],
            None if problem.edge_values is None else problem.edge_values[lo:hi],
            vv[dests],
        )
        ops, _ = apply_reductions(prog, local, dests - a, msgs, mask)
    final, upd = prog.apply(local, old)
    idx = a + np.flatnonzero(upd)
    if idx.size:
        vv[idx] = final[upd]
    return idx, ops


def iterate_chunks(
    problem: CSRProblem, chunk_size: int, *, metrics=None
) -> tuple[np.ndarray, int]:
    """One full iteration over all vertices in ``chunk_size`` chunks.

    Returns ``(updated_vertex_indices, reduction_ops)`` for the iteration.
    When a :class:`~repro.telemetry.MetricsRegistry` is passed via
    ``metrics``, the iteration's reduction-op and chunk counts are published
    under the ``csr.*`` namespace.
    """
    n = problem.csr.num_vertices
    updated: list[np.ndarray] = []
    ops = 0
    chunks = 0
    for a in range(0, n, chunk_size):
        idx, chunk_ops = run_chunk(problem, a, min(a + chunk_size, n))
        ops += chunk_ops
        chunks += 1
        if idx.size:
            updated.append(idx)
    if metrics is not None:
        metrics.counter("csr.reduction_ops").inc(ops)
        metrics.counter("csr.chunks").inc(chunks)
    if updated:
        return np.concatenate(updated), ops
    return np.empty(0, dtype=np.int64), ops
