"""Proven-safe dtype narrowing behind ``RunConfig(narrow="auto")``.

The range certifier (:mod:`repro.analysis.ranges`) proves per-field
invariant value ranges (W504) and overflow safety (W501) for a program on
a concrete graph.  When a proof justifies it, :func:`narrow_gate` wraps
the program in a :class:`NarrowedProgram` whose declared ``vertex_dtype``
uses the narrower widths — so every engine allocates narrowed
``VertexValues`` and message buffers through the unchanged
``initial_values`` / ``init_local`` paths, and the cost model charges the
narrowed ``vertex_value_bytes``.

The wrapper keeps the *computation* wide: each kernel call widens its
narrow inputs back to the original dtype, runs the inner program's kernel
bit-for-bit, and narrows the stored outputs.  Narrowing is lossless
because W504 proves every stored value fits the narrow dtype, with the
one deliberate exception of the ``UINT_INF`` sentinel, which remaps to
the narrow dtype's max (order-preserving under the min/max reducers the
plan admits; the plan requires ``hi`` strictly below that max so the
remapped sentinel stays distinguishable).  The run result is widened back
before it reaches the caller, so ``narrow="auto"`` is bit-exact against
``narrow="off"``.

``validate="full"`` additionally arms :class:`RangeProbeHooks`: a
:class:`~repro.frameworks.base.FaultHooks` wrapper whose ``values`` site
vectorized-asserts the proven W504 ranges on the live values each flush,
raising a typed W504 :class:`~repro.errors.ValidationError` on escape.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

import numpy as np

from repro.frameworks.base import FaultHooks
from repro.vertexcentric.datatypes import UINT_INF
from repro.vertexcentric.program import VertexProgram

__all__ = ["NarrowedProgram", "RangeProbeHooks", "narrow_gate"]


class NarrowedProgram(VertexProgram):
    """A program whose stored ``VertexValues`` use proven narrower dtypes.

    ``plan`` maps field name -> narrow base dtype (from
    :func:`repro.analysis.ranges.narrowing_plan`); ``ranges`` maps each
    planned field to its proven ``(lo, hi, has_inf)`` triple.  Subarray
    shapes are preserved; fields outside the plan keep their declared
    dtype.
    """

    def __init__(self, inner: VertexProgram, plan: dict, ranges: dict):
        self.inner = inner
        self.plan = {f: np.dtype(dt) for f, dt in plan.items()}
        self.ranges = dict(ranges)
        wide = inner.vertex_dtype
        self._wide_dtype = wide
        #: field -> (wide base dtype, narrow sentinel value) for fields
        #: whose proven range includes the UINT_INF sentinel.
        self._sentinel: dict[str, tuple[np.dtype, np.generic]] = {}
        descr = []
        for fname in wide.names:
            ft = wide.fields[fname][0]
            base = ft.base if ft.subdtype is not None else ft
            shape = ft.shape if ft.subdtype is not None else ()
            nd = self.plan.get(fname, base)
            if fname in self.plan and self.ranges[fname][2]:
                self._sentinel[fname] = (base, nd.type(np.iinfo(nd).max))
            descr.append((fname, nd, shape) if shape else (fname, nd))
        self.vertex_dtype = np.dtype(descr)
        # Delegated declarations (the narrowed struct is the only change).
        self.name = inner.name
        self.static_dtype = inner.static_dtype
        self.edge_dtype = inner.edge_dtype
        self.reduce_ops = inner.reduce_ops
        self.tolerance = inner.tolerance
        self.certify_state = inner.certify_state

    # -- lossless dtype conversion --------------------------------------
    def widen(self, arr: np.ndarray) -> np.ndarray:
        """Narrow storage -> original wide dtype (sentinel remapped)."""
        out = np.empty(arr.shape, dtype=self._wide_dtype)
        for fname in self._wide_dtype.names:
            data = arr[fname]
            sent = self._sentinel.get(fname)
            if sent is not None:
                base, smax = sent
                w = data.astype(base)
                w[data == smax] = UINT_INF
                out[fname] = w
            else:
                out[fname] = data
        return out

    def narrow(self, arr: np.ndarray) -> np.ndarray:
        """Original wide dtype -> narrow storage (sentinel remapped)."""
        out = np.empty(arr.shape, dtype=self.vertex_dtype)
        for fname in self._wide_dtype.names:
            data = arr[fname]
            sent = self._sentinel.get(fname)
            if sent is not None:
                ft = self.vertex_dtype.fields[fname][0]
                nbase = ft.base if ft.subdtype is not None else ft
                n = data.astype(nbase)
                n[data == UINT_INF] = sent[1]
                out[fname] = n
            else:
                out[fname] = data
        return out

    def _widen_value(self, fname: str, val):
        arr = np.asarray(val)
        sent = self._sentinel.get(fname)
        if sent is not None:
            base, smax = sent
            wide = np.where(arr == smax, UINT_INF, arr.astype(base))
            wide = wide.astype(base)
            return wide[()] if wide.ndim == 0 else wide
        if fname in self.plan:
            ft = self._wide_dtype.fields[fname][0]
            base = ft.base if ft.subdtype is not None else ft
            wide = arr.astype(base)
            return wide[()] if wide.ndim == 0 else wide
        return val

    def _narrow_value(self, fname: str, val):
        arr = np.asarray(val)
        if fname not in self.plan:
            return val
        sent = self._sentinel.get(fname)
        narrow = arr.astype(self.plan[fname])
        if sent is not None:
            narrow = np.where(arr == UINT_INF, sent[1], narrow)
            narrow = narrow.astype(self.plan[fname])
        return narrow[()] if narrow.ndim == 0 else narrow

    def _widen_record(self, rec: dict) -> dict:
        return {f: self._widen_value(f, v) for f, v in rec.items()}

    def _store_record(self, wide: dict, rec: dict) -> None:
        for f, v in wide.items():
            rec[f] = self._narrow_value(f, v)

    # -- problem setup ---------------------------------------------------
    def initial_values(self, graph) -> np.ndarray:
        return self.narrow(self.inner.initial_values(graph))

    def static_values(self, graph):
        return self.inner.static_values(graph)

    def edge_values(self, graph):
        return self.inner.edge_values(graph)

    # -- scalar device functions (widen per call, narrow the write-back) -
    def init_compute(self, local_v: dict, v: dict) -> None:
        wl = self._widen_record(local_v)
        self.inner.init_compute(wl, self._widen_record(v))
        self._store_record(wl, local_v)

    def compute(self, src_v, src_static, edge, local_v) -> None:
        wl = self._widen_record(local_v)
        self.inner.compute(self._widen_record(src_v), src_static, edge, wl)
        self._store_record(wl, local_v)

    def update_condition(self, local_v: dict, v: dict) -> bool:
        wl = self._widen_record(local_v)
        decision = self.inner.update_condition(wl, self._widen_record(v))
        self._store_record(wl, local_v)
        return bool(decision)

    # -- vectorized kernels: wide local plan ------------------------------
    def init_local(self, current: np.ndarray) -> np.ndarray:
        # The engine's reduction buffer stays wide; apply() narrows the
        # survivors back into the narrow VertexValues.
        return self.inner.init_local(self.widen(current))

    def messages(self, src_vals, src_static, edge_vals, dest_old):
        return self.inner.messages(
            self.widen(src_vals), src_static, edge_vals, self.widen(dest_old)
        )

    def apply(self, local, old):
        final, updated = self.inner.apply(local, self.widen(old))
        return self.narrow(final), updated

    # -- bookkeeping ------------------------------------------------------
    def begin_iteration(self, iteration: int) -> None:
        self.inner.begin_iteration(iteration)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        planned = {f: dt.name for f, dt in sorted(self.plan.items())}
        return f"NarrowedProgram({self.inner!r}, plan={planned})"


class RangeProbeHooks(FaultHooks):
    """Runtime W504 invariant probe armed under ``validate="full"``.

    Wraps the run's existing :class:`FaultHooks` (delegating each site
    only when the inner hooks are active) and vectorized-asserts the
    proven per-field ranges at every ``values`` flush.
    """

    active = True

    def __init__(self, inner: FaultHooks, program, ranges: dict):
        self._inner = inner
        self._program = program
        self._ranges = dict(ranges)

    def launch(self, engine, shared_bytes, limit_bytes) -> None:
        if self._inner.active:
            self._inner.launch(engine, shared_bytes, limit_bytes)

    def transfer(self, engine, which) -> None:
        if self._inner.active:
            self._inner.transfer(engine, which)

    def kernel(self, engine, iteration, exec_path) -> None:
        if self._inner.active:
            self._inner.kernel(engine, iteration, exec_path)

    def representations(self, engine, graph, program, config) -> None:
        if self._inner.active:
            self._inner.representations(engine, graph, program, config)

    def values(self, engine, iteration, values) -> None:
        if self._inner.active:
            self._inner.values(engine, iteration, values)
        from repro.analysis.violations import Violation
        from repro.errors import ValidationError

        wide = values
        if isinstance(self._program, NarrowedProgram):
            wide = self._program.widen(values)
        for fname, (lo, hi, _has_inf) in self._ranges.items():
            if fname not in (wide.dtype.names or ()):
                continue
            data = np.asarray(wide[fname])
            if data.dtype.kind == "f":
                lanes = data[np.isfinite(data)]
            elif data.dtype == np.dtype(np.uint32):
                lanes = data[data != UINT_INF]
            else:
                lanes = data
            if lanes.size == 0:
                continue
            worst_lo = float(lanes.min())
            worst_hi = float(lanes.max())
            if worst_lo < lo or worst_hi > hi:
                raise ValidationError([Violation(
                    "W504",
                    f"iteration {iteration}: live values of field "
                    f"{fname!r} escaped the proven invariant range "
                    f"[{lo:g}, {hi:g}] (observed [{worst_lo:g}, "
                    f"{worst_hi:g}])",
                    subject=str(getattr(self._program, "name", "")),
                )])


def narrow_gate(engine, graph, program, config):
    """Resolve ``narrow="auto"`` for one run.

    Called from :meth:`Engine.run` after the certify gate.  Returns
    ``(program, config, widen_back)``: the (possibly wrapped) program,
    the (possibly adjusted) config, and a callable that widens the final
    ``RunResult.values`` back to the declared dtype — ``None`` when no
    field narrowed.
    """
    from repro.analysis.ranges import analyze_ranges, narrowing_plan

    tracer = config.tracer
    metrics = tracer.metrics
    name = str(getattr(program, "name", type(program).__name__))
    with tracer.span("analysis.ranges.gate", "analysis", program=name):
        cert = analyze_ranges(
            program, graph, cache=getattr(engine, "cache", None)
        )
        metrics.counter("analysis.ranges.analyzed").inc()
        for check in cert.checks:
            metrics.counter(
                f"analysis.ranges.{check.status.lower()}"
            ).inc()
        plan = narrowing_plan(cert, program)
        probe_ranges = (
            dict(cert.ranges) if cert.proved("W504") else {}
        )
        if config.validate == "full" and probe_ranges:
            metrics.counter("analysis.ranges.probe.armed").inc()
        if not plan:
            metrics.counter("analysis.ranges.gate.noop").inc()
            narrowed = None
        else:
            metrics.counter("analysis.ranges.gate.narrowed").inc()
            metrics.gauge(f"analysis.ranges.fields.{name}").set(len(plan))
            ranges = {f: cert.field_range(f) for f in plan}
            narrowed = NarrowedProgram(program, plan, ranges)
    if narrowed is None:
        if config.validate == "full" and probe_ranges:
            config = dc_replace(config, faults=RangeProbeHooks(
                config.faults, program, probe_ranges))
        return program, config, None
    if config.resume_values is not None:
        config = dc_replace(
            config,
            resume_values=narrowed.narrow(np.asarray(config.resume_values)),
        )
    if config.validate == "full" and probe_ranges:
        config = dc_replace(config, faults=RangeProbeHooks(
            config.faults, narrowed, probe_ranges))
    return narrowed, config, narrowed.widen
