"""Scalar reference engine.

Executes the paper's *scalar* device functions (``init_compute`` /
``compute`` / ``update_condition``) with plain Python loops over a G-Shards
structure, following Figure 5 line by line — including the per-entry
"atomic" update (a sequential dict mutation, which is a legal serialization
of any commutative/associative reduction).

It is deliberately slow and simple: its only job is to be an independent
oracle.  Tests assert the vectorized engines produce identical values on
randomized graphs, which pins the vectorized kernels to the paper's
semantics.
"""

from __future__ import annotations

import numpy as np

from repro.frameworks.base import (ConvergenceError, Engine, IterationTrace,
                                   RunConfig, RunResult)
from repro.graph.digraph import DiGraph
from repro.graph.shards import GShards
from repro.gpu.stats import KernelStats
from repro.vertexcentric.program import VertexProgram

__all__ = ["ScalarReferenceEngine"]


def _record(array: np.ndarray, i: int) -> dict:
    """Mutable dict view of structured-array element ``i``."""
    return {name: array[name][i] for name in array.dtype.names}


def _store(array: np.ndarray, i: int, rec: dict) -> None:
    for name in array.dtype.names:
        array[name][i] = rec[name]


class ScalarReferenceEngine(Engine):
    """Loop-based executor of the scalar programming interface."""

    name = "scalar-reference"

    def __init__(self, vertices_per_shard: int = 4) -> None:
        self.vertices_per_shard = vertices_per_shard

    def preflight_representations(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig
    ) -> tuple:
        """The G-Shards structure the reference loop walks."""
        return (GShards(graph, self.vertices_per_shard),)

    def predicted_stage_stats(
        self, graph: DiGraph, program: VertexProgram
    ) -> dict[str, KernelStats]:
        """The oracle models no hardware: nothing to predict."""
        return {}

    def _run(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig
    ) -> RunResult:
        tracer = config.tracer
        with tracer.span(
            self.name,
            "run",
            engine=self.name,
            program=program.name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        ) as run_span:
            return self._execute(graph, program, config, run_span)

    def _execute(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig, run_span
    ) -> RunResult:
        max_iterations = config.max_iterations
        tracer = config.tracer
        sh = GShards(graph, self.vertices_per_shard)
        vertex_values = config.initial_values(graph, program)
        static_all = program.static_values(graph)
        ev = program.edge_values(graph)
        edge_vals = None if ev is None else ev[sh.edge_positions]
        src_value = vertex_values[sh.src_index].copy()
        src_static = None if static_all is None else static_all[sh.src_index]

        faults = config.faults
        traces: list[IterationTrace] = []
        converged = False
        iterations = config.start_iteration
        for iteration in range(config.start_iteration + 1, max_iterations + 1):
            if faults.active:
                faults.kernel(self.name, iteration, "reference")
            updated_total = 0
            for i in range(sh.num_shards):
                lo, hi = sh.vertex_range(i)
                # Stage 1: init local vertices from VertexValues.
                locals_ = []
                for v in range(lo, hi):
                    rec = _record(vertex_values, v)
                    local = dict(rec)
                    program.init_compute(local, rec)
                    locals_.append(local)
                # Stage 2: fold every shard entry into its destination.
                sl = sh.shard_slice(i)
                for e in range(sl.start, sl.stop):
                    program.compute(
                        _record(src_value, e),
                        None if src_static is None else _record(src_static, e),
                        None if edge_vals is None else _record(edge_vals, e),
                        locals_[int(sh.dest_index[e]) - lo],
                    )
                # Stage 3: conditional write-back to VertexValues.
                shard_updated = False
                for v in range(lo, hi):
                    rec = _record(vertex_values, v)
                    if program.update_condition(locals_[v - lo], rec):
                        _store(vertex_values, v, locals_[v - lo])
                        shard_updated = True
                        updated_total += 1
                # Stage 4: propagate into every window sourced from shard i.
                if shard_updated:
                    for _j, start, stop in sh.windows_of(i):
                        for e in range(start, stop):
                            src_value[e] = vertex_values[int(sh.src_index[e])]
            iterations = iteration
            if config.collect_traces:
                traces.append(
                    IterationTrace(iteration, updated_total, 0.0, 0.0)
                )
            if tracer.enabled:
                # The oracle models no hardware: spans carry wall time only.
                tracer.emit(
                    f"iter-{iteration}", "iteration",
                    updated_vertices=updated_total,
                )
                tracer.metrics.histogram(
                    "engine.updated_vertices"
                ).observe(updated_total)
            if faults.active:
                faults.values(self.name, iteration, vertex_values)
            if updated_total == 0:
                converged = True
                break
        if not converged and not config.allow_partial:
            raise ConvergenceError(
                f"{self.name}/{program.name} did not converge in "
                f"{max_iterations} iterations"
            )
        if tracer.enabled:
            tracer.metrics.counter("engine.iterations").inc(
                iterations - config.start_iteration
            )
            run_span.attrs["iterations"] = iterations
            run_span.attrs["converged"] = converged
        return RunResult(
            engine=self.name,
            program=program.name,
            values=vertex_values,
            iterations=iterations,
            converged=converged,
            kernel_time_ms=0.0,
            h2d_ms=0.0,
            d2h_ms=0.0,
            representation_bytes=0,
            stats=KernelStats(),
            traces=traces,
            num_edges=graph.num_edges,
            # The oracle has a single (reference-shaped) loop; it never
            # consults config.exec_path or the representation cache.
            exec_path="reference",
        )
