"""Multi-streamed CuSha for graphs larger than device memory.

The paper leaves this as future work (section 5.1): *"If graphs do not fit
in the GPU RAM, a multi-streamed procedure should be incorporated to overlap
computation and data transfer."*  This engine implements that procedure on
the simulator:

- shards are grouped into **chunks** whose representation fits the device
  memory budget;
- per iteration, chunk ``k+1``'s entry arrays are copied host-to-device on
  one CUDA stream while chunk ``k`` computes on another, so transfer time
  is hidden behind compute (up to the slower of the two, per chunk);
- ``VertexValues`` (which every chunk reads and writes) stays resident on
  the device; the write-back targets of a chunk may live in a currently
  evicted chunk, so window updates destined for non-resident shards are
  spooled into a device-resident staging buffer and applied when the owner
  chunk streams back in — the same deferred-visibility semantics as a
  ``sync_mode="bsp"`` schedule across chunk boundaries.

Timing per iteration is therefore
``sum_k max(compute_ms[k], h2d_ms[k+1]) + h2d_ms[0]`` plus the staging
traffic; the engine reports both the effective time and the *unoverlapped*
time so the benefit of streaming is visible.

Vertex values are computed exactly (same fixpoint as every other engine);
only the schedule and the transfer accounting differ.

``config.exec_path`` selects the iteration core.  Because every shard owns
its destination-vertex slice and write-backs are deferred to the iteration
boundary, *all* shards in an iteration are independent: the fast path
(default) evaluates the whole iteration in one vectorized step and recovers
the per-chunk stats — and therefore the identical per-chunk compute times
feeding the overlap model — from segmented pricing.  ``"reference"`` keeps
the original per-shard chunk loop.
"""

from __future__ import annotations

import numpy as np

from repro.cache import graph_fingerprint, resolve_cache
from repro.frameworks.base import (ConvergenceError, Engine, IterationTrace,
                                   RunConfig, RunResult)
from repro.frameworks.cusha import CuShaEngine
from repro.frameworks.frontier import (ShardFrontier, choose_direction,
                                       vertex_influence_csr)
from repro.frameworks.wavebatch import (multi_arange, stats_from_row,
                                        streamed_static_bundle)
from repro.graph.cw import ConcatenatedWindows
from repro.graph.digraph import DiGraph
from repro.gpu.pcie import transfer_ms
from repro.gpu.spec import GTX780, GPUSpec, PCIeSpec
from repro.gpu.stats import KernelStats
from repro.vertexcentric.program import VertexProgram, apply_reductions
from repro.gpu.memory import (contiguous_transactions, gather_transactions,
                              gather_transactions_segmented)
from repro.gpu.stats import LOAD_GRANULARITY_BYTES, STORE_GRANULARITY_BYTES
from repro.gpu.engine import KernelCostModel
from repro.frameworks import costs
from repro.gpu.warp import slots_for_contiguous
from repro.placement import multi_device_run
from repro.telemetry.metrics import publish_kernel_stats

__all__ = ["StreamedCuShaEngine"]


class StreamedCuShaEngine(Engine):
    """Out-of-core CuSha (CW representation) with transfer/compute overlap.

    Parameters
    ----------
    device_memory_bytes:
        Device memory available for shard entry arrays (``VertexValues``
    and the staging buffer are budgeted separately).  Chunks are sized to
        fit half of it, leaving room for the double-buffered incoming chunk.
    vertices_per_shard:
        The paper's ``|N|``; ``None`` auto-selects like
        :class:`~repro.frameworks.cusha.CuShaEngine`.
    cache:
        Representation/stats memo selection, as in
        :class:`~repro.frameworks.cusha.CuShaEngine` (``None`` = process
        default, ``False`` = disabled, or an explicit
        :class:`~repro.cache.RepresentationCache`).
    """

    def __init__(
        self,
        *,
        device_memory_bytes: int = 64 * 1024 * 1024,
        vertices_per_shard: int | None = None,
        spec: GPUSpec = GTX780,
        pcie: PCIeSpec | None = None,
        cache=None,
    ) -> None:
        if device_memory_bytes <= 0:
            raise ValueError("device_memory_bytes must be positive")
        self.device_memory_bytes = device_memory_bytes
        self.vertices_per_shard = vertices_per_shard
        self.spec = spec
        self.pcie = pcie or PCIeSpec()
        self.cache = cache
        self.cost_model = KernelCostModel(spec)
        self.name = "cusha-streamed"

    # ------------------------------------------------------------------
    def _chunk_shards(
        self, cw: ConcatenatedWindows, entry_bytes: int
    ) -> list[tuple[int, int]]:
        """Group shards into contiguous chunks fitting half the budget."""
        budget = max(1, self.device_memory_bytes // 2)
        chunks: list[tuple[int, int]] = []
        sh = cw.shards
        start = 0
        used = 0
        for i in range(sh.num_shards):
            size = sh.shard_size(i) * entry_bytes
            if used and used + size > budget:
                chunks.append((start, i))
                start, used = i, 0
            used += size
        chunks.append((start, sh.num_shards))
        return chunks

    # ------------------------------------------------------------------
    def preflight_representations(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig
    ) -> tuple:
        """The CW structure the streamed run chunks, via the shared cache."""
        inner = CuShaEngine(
            "cw",
            vertices_per_shard=self.vertices_per_shard,
            spec=self.spec,
            pcie=self.pcie,
        )
        N = inner._choose_shard_size(graph, program)
        cache = resolve_cache(self.cache)
        if cache is not None:
            cw = cache.get(
                ("cw", graph_fingerprint(graph), N),
                lambda: ConcatenatedWindows.from_graph(graph, N),
            )
        else:
            cw = ConcatenatedWindows.from_graph(graph, N)
        return (cw,)

    def predicted_stage_stats(
        self, graph: DiGraph, program: VertexProgram
    ) -> dict[str, KernelStats]:
        """Static per-sweep stats of every compute chunk plus the
        full-sweep write-back, from the same cached bundle the fast path
        executes with."""
        (cw,) = self.preflight_representations(
            graph, program, RunConfig()
        )
        vbytes = program.vertex_value_bytes
        sbytes = program.static_value_bytes
        ebytes = program.edge_value_bytes
        warp = self.spec.warp_size
        entry_bytes = 4 + vbytes + sbytes + ebytes + 4 + 4
        cache = resolve_cache(self.cache)
        N = cw.vertices_per_shard
        if cache is not None:
            chunks, bundle = cache.get(
                ("streamed-stats", graph_fingerprint(graph), N, warp,
                 vbytes, sbytes, ebytes, self.device_memory_bytes),
                lambda: (
                    lambda ch: (ch, streamed_static_bundle(
                        cw, ch, warp, vbytes, sbytes, ebytes))
                )(self._chunk_shards(cw, entry_bytes)),
            )
        else:
            chunks = self._chunk_shards(cw, entry_bytes)
            bundle = streamed_static_bundle(
                cw, chunks, warp, vbytes, sbytes, ebytes
            )
        out = {
            f"chunk-{k}-compute": stats_from_row(bundle.chunk_static[k])
            for k in range(len(chunks))
        }
        out["writeback"] = stats_from_row(bundle.writeback.sum(axis=0))
        return out

    # ------------------------------------------------------------------
    def _run(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig
    ) -> RunResult:
        tracer = config.tracer
        with tracer.span(
            self.name,
            "run",
            engine=self.name,
            program=program.name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        ) as run_span:
            if config.exec_path == "reference":
                return self._execute_reference(graph, program, config, run_span)
            return self._execute_fast(graph, program, config, run_span)

    # ------------------------------------------------------------------
    # Fast path: whole-iteration batching with per-chunk stat recovery
    # ------------------------------------------------------------------
    def _execute_fast(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig, run_span
    ) -> RunResult:
        max_iterations = config.max_iterations
        tracer = config.tracer
        trace_on = tracer.enabled
        inner = CuShaEngine(
            "cw",
            vertices_per_shard=self.vertices_per_shard,
            spec=self.spec,
            pcie=self.pcie,
        )
        N = inner._choose_shard_size(graph, program)
        vbytes = program.vertex_value_bytes
        sbytes = program.static_value_bytes
        ebytes = program.edge_value_bytes
        warp = self.spec.warp_size
        entry_bytes = 4 + vbytes + sbytes + ebytes + 4 + 4  # + mapper slot

        cache = resolve_cache(self.cache)
        cache_hits = cache_misses = 0
        if cache is not None:
            hits0, misses0 = cache.counters()
            fp = graph_fingerprint(graph)
            cw = cache.get(
                ("cw", fp, N),
                lambda: ConcatenatedWindows.from_graph(graph, N),
            )
            chunks, bundle = cache.get(
                ("streamed-stats", fp, N, warp, vbytes, sbytes, ebytes,
                 self.device_memory_bytes),
                lambda: (
                    lambda ch: (ch, streamed_static_bundle(
                        cw, ch, warp, vbytes, sbytes, ebytes))
                )(self._chunk_shards(cw, entry_bytes)),
            )
            hits1, misses1 = cache.counters()
            cache_hits, cache_misses = hits1 - hits0, misses1 - misses0
            if trace_on:
                tracer.metrics.counter("cache.hits").inc(cache_hits)
                tracer.metrics.counter("cache.misses").inc(cache_misses)
        else:
            cw = ConcatenatedWindows.from_graph(graph, N)
            chunks = self._chunk_shards(cw, entry_bytes)
            bundle = streamed_static_bundle(
                cw, chunks, warp, vbytes, sbytes, ebytes
            )
        sh = cw.shards
        S = sh.num_shards
        C = len(chunks)
        mdr = multi_device_run(
            config, S,
            weights=np.diff(sh.shard_offsets),
            src_unit=graph.src // N,
            dst_unit=graph.dst // N,
            value_bytes=vbytes,
            pcie=self.pcie,
        )

        # Host-side state (the "disk" copy); device residency is modeled.
        vertex_values = config.initial_values(graph, program)
        static_all = program.static_values(graph)
        src_value = vertex_values[sh.src_index].copy()
        src_static = None if static_all is None else static_all[sh.src_index]
        ev = program.edge_values(graph)
        edge_vals = None if ev is None else ev[sh.edge_positions]

        dest_global = bundle.dest_global
        chunk_static = bundle.chunk_static
        wb_mat = bundle.writeback
        # Entry->chunk and shard->chunk maps for attributing the dynamic
        # stats (atomic ops, conditional stores) back to their chunk.
        chunk_entry_sizes = np.array(
            [int(sh.shard_offsets[b] - sh.shard_offsets[a]) for a, b in chunks],
            dtype=np.int64,
        )
        entry_chunk = np.repeat(np.arange(C, dtype=np.int64), chunk_entry_sizes)
        shard_chunk = np.repeat(
            np.arange(C, dtype=np.int64),
            np.array([b - a for a, b in chunks], dtype=np.int64),
        )
        chunk_byte_sizes = chunk_entry_sizes * entry_bytes
        shard_entry_sizes = np.diff(sh.shard_offsets)
        shard_byte_sizes = shard_entry_sizes * entry_bytes
        total_entries = int(sh.shard_offsets[-1])
        n = graph.num_vertices
        shard_static = bundle.shard_static

        # ----- frontier state ------------------------------------------------
        frontier_on = config.frontier != "off"
        frontier = None
        last_mask = None
        if frontier_on:
            if cache is not None:
                infl = cache.get(
                    ("frontier", fp, N),
                    lambda: vertex_influence_csr(graph.src, graph.dst, n, N, S),
                )
            else:
                infl = vertex_influence_csr(graph.src, graph.dst, n, N, S)
            # Write-back runs once per iteration after every chunk (BSP
            # across chunks), so all marks survive: flush_pos == 0.
            frontier = ShardFrontier(
                S, N, infl[0], infl[1],
                resume=config.resume_frontier,
                flush_pos=np.zeros(S, dtype=np.int64),
            )
            last_mask = np.zeros(n, dtype=bool)

        # Transfers: VertexValues resident once, chunks stream per iteration.
        h2d_fixed_ms = transfer_ms(
            graph.num_vertices * (vbytes + sbytes), self.pcie
        )
        d2h_ms = transfer_ms(graph.num_vertices * vbytes, self.pcie)
        faults = config.faults
        if faults.active:
            faults.launch(self.name, 0, self.device_memory_bytes)
            faults.transfer(self.name, "h2d")
        tracer.emit(
            "h2d", "transfer", model_start_ms=0.0, model_ms=h2d_fixed_ms,
            bytes=graph.num_vertices * (vbytes + sbytes), resident=True,
        )
        transfer_times = [
            transfer_ms(int(cb), self.pcie) for cb in chunk_byte_sizes
        ]

        total_stats = KernelStats()
        traces: list[IterationTrace] = []
        kernel_ms = 0.0
        unoverlapped_ms = 0.0
        converged = False
        iterations = config.start_iteration

        for iteration in range(config.start_iteration + 1, max_iterations + 1):
            if faults.active:
                faults.kernel(self.name, iteration, config.exec_path)
                if mdr is not None:
                    faults.device(
                        self.name, iteration, config.exec_path, mdr.placement
                    )
            iter_start_ms = h2d_fixed_ms + kernel_ms
            with tracer.span(
                f"iter-{iteration}", "iteration", model_start_ms=iter_start_ms
            ) as it_span:
                push = False
                direction = None
                track = False
                active_vertices = 0
                active_shard_count = 0
                if frontier_on:
                    program.begin_iteration(iteration)
                    if config.frontier == "auto":
                        direction = choose_direction(
                            int(shard_entry_sizes[frontier.dirty].sum()),
                            total_entries,
                        )
                    else:
                        direction = "push"
                    push = direction == "push"
                    track = trace_on
                    last_mask[:] = False
                if push:
                    act = frontier.active(0, S)
                    frontier.shards_skipped += S - act.size
                    frontier.clear(act)
                    active_shard_count = int(act.size)
                    if mdr is not None:
                        mdr.note_processed(act)
                    frontier.edges_processed += int(
                        shard_entry_sizes[act].sum()
                    )
                    # Frontier gather: pack the active shards' vertex
                    # slices and entry ranges, rebase destinations into
                    # the packed coordinate space, and run the same
                    # whole-iteration step over the subset (every shard
                    # owns its destination slice, so the gather is closed).
                    v_lo = act * N
                    v_hi = np.minimum(v_lo + N, n)
                    v_idx = multi_arange(v_lo, v_hi)
                    e_idx = multi_arange(
                        sh.shard_offsets[act], sh.shard_offsets[act + 1]
                    )
                    packed_off = np.zeros(act.size + 1, dtype=np.int64)
                    np.cumsum(v_hi - v_lo, out=packed_off[1:])
                    dest_sub = dest_global[e_idx] - np.repeat(
                        v_lo - packed_off[:-1], shard_entry_sizes[act]
                    )
                    old = vertex_values[v_idx]
                    local = program.init_local(old)
                    msgs, mask = program.messages(
                        src_value[e_idx],
                        None if src_static is None else src_static[e_idx],
                        None if edge_vals is None else edge_vals[e_idx],
                        old[dest_sub],
                    )
                    ops_total, changed = apply_reductions(
                        program, local, dest_sub, msgs, mask,
                        track_changed=track,
                    )
                    ec = entry_chunk[e_idx]
                    if mask is None:
                        masked_per_chunk = np.bincount(ec, minlength=C)
                    else:
                        masked_per_chunk = np.bincount(ec[mask], minlength=C)
                else:
                    if frontier_on:  # pull: dense sweep over everything
                        frontier.dirty[:] = False
                        active_shard_count = S
                        frontier.edges_processed += total_entries
                    # One vectorized step over every entry: shards only read
                    # their own vertex slice pre-update and write-back is
                    # deferred to the iteration boundary, so the concatenated
                    # evaluation is bit-identical to the per-chunk loop.
                    local = program.init_local(vertex_values)
                    msgs, mask = program.messages(
                        src_value, src_static, edge_vals,
                        vertex_values[dest_global],
                    )
                    ops_total, changed = apply_reductions(
                        program, local, dest_global, msgs, mask,
                        track_changed=track,
                    )
                    if mask is None:
                        masked_per_chunk = chunk_entry_sizes
                    else:
                        masked_per_chunk = np.bincount(
                            entry_chunk[mask], minlength=C
                        )
                if track and changed is not None:
                    active_vertices = int(changed.sum())
                n_fields = len(msgs)
                ops_per_chunk = masked_per_chunk * n_fields
                if push:
                    final, upd = program.apply(local, old)
                    idx = v_idx[np.flatnonzero(upd)]
                else:
                    final, upd = program.apply(local, vertex_values)
                    idx = np.flatnonzero(upd)
                updated_total = int(idx.size)
                store_tx_chunk = np.zeros(C, dtype=np.float64)
                store_bytes_chunk = np.zeros(C, dtype=np.float64)
                if updated_total:
                    vertex_values[idx] = final[upd]
                    shard_counts = np.bincount(idx // N, minlength=S)
                    seg = np.zeros(S + 1, dtype=np.int64)
                    np.cumsum(shard_counts, out=seg[1:])
                    _, per_shard_tx = gather_transactions_segmented(
                        idx, vbytes, seg, warp_size=warp,
                        transaction_bytes=STORE_GRANULARITY_BYTES,
                        per_segment=True,
                    )
                    store_tx_chunk = np.bincount(
                        shard_chunk, weights=per_shard_tx, minlength=C
                    )
                    store_bytes_chunk = np.bincount(
                        shard_chunk, weights=shard_counts * vbytes,
                        minlength=C,
                    )
                    upd_shards = np.flatnonzero(shard_counts)
                else:
                    upd_shards = np.empty(0, dtype=np.int64)
                if mdr is not None:
                    mdr.note_updated(upd_shards)

                if push:
                    # Only the active shards stream in, and chunks with no
                    # active shard launch no kernel and transfer nothing.
                    chunk_rows = np.zeros(
                        (C, shard_static.shape[1]), dtype=np.float64
                    )
                    np.add.at(chunk_rows, shard_chunk[act], shard_static[act])
                    chunk_act_bytes = np.zeros(C, dtype=np.int64)
                    np.add.at(
                        chunk_act_bytes, shard_chunk[act], shard_byte_sizes[act]
                    )
                    iter_tt = [
                        transfer_ms(int(bb), self.pcie) if bb else 0.0
                        for bb in chunk_act_bytes
                    ]
                    iter_bytes = chunk_act_bytes
                    run_chunks = np.flatnonzero(
                        np.bincount(shard_chunk[act], minlength=C)
                    ).tolist()
                else:
                    chunk_rows = chunk_static
                    iter_tt = transfer_times
                    iter_bytes = chunk_byte_sizes
                    run_chunks = list(range(C))
                iter_stats = KernelStats()
                iter_stats.kernel_launches = len(run_chunks)
                compute_times: list[float] = []
                chunk_tt: list[float] = []
                for k in run_chunks:
                    row = chunk_rows[k].copy()
                    row[2] += store_tx_chunk[k]
                    row[3] += store_bytes_chunk[k]
                    row[7] += ops_per_chunk[k]
                    stats = stats_from_row(row)
                    compute_times.append(self.cost_model.time_ms(stats))
                    chunk_tt.append(iter_tt[k])
                    iter_stats += stats
                    if trace_on:
                        tracer.emit(
                            f"chunk-{k}-compute", "stage",
                            model_start_ms=iter_start_ms,
                            model_ms=compute_times[-1],
                            stats=stats, iteration=iteration, chunk=k,
                        )
                        tracer.emit(
                            f"chunk-{k}-h2d", "transfer",
                            model_start_ms=iter_start_ms,
                            model_ms=iter_tt[k],
                            bytes=int(iter_bytes[k]),
                            iteration=iteration, chunk=k,
                        )
                assert ops_total == int(ops_per_chunk.sum())
                # Write-back (CW) is applied once per iteration after all
                # chunks ran: cross-chunk staging semantics (BSP across
                # chunks).  The updated shards' mapper slots are disjoint,
                # so one batched scatter matches the per-shard loop.
                if upd_shards.size:
                    pos = multi_arange(
                        cw.cw_offsets[upd_shards],
                        cw.cw_offsets[upd_shards + 1],
                    )
                    src_value[cw.mapper[pos]] = vertex_values[
                        cw.cw_src_index[pos]
                    ]
                    wb_stats = stats_from_row(wb_mat[upd_shards].sum(axis=0))
                else:
                    wb_stats = KernelStats()
                wb_ms = self.cost_model.time_ms(wb_stats)
                iter_stats += wb_stats
                if frontier_on:
                    # Iteration-end flush: src_value now carries the new
                    # values, so mark the updaters' shards and everything
                    # they influence (all marks survive under BSP).
                    last_mask[idx] = True
                    frontier.mark(idx)

                # Overlap model: chunk k+1's H2D hides under chunk k's
                # compute.
                pipelined = chunk_tt[0] if chunk_tt else 0.0
                for k, comp in enumerate(compute_times):
                    incoming = chunk_tt[k + 1] if k + 1 < len(chunk_tt) else 0.0
                    pipelined += max(comp, incoming)
                serial = sum(compute_times) + sum(chunk_tt)
                t_ms = pipelined + wb_ms
                if mdr is not None:
                    t_ms = mdr.iteration_time(t_ms)
                    if trace_on and mdr.last_exchange_bytes:
                        tracer.emit(
                            "exchange", "transfer",
                            model_start_ms=iter_start_ms + t_ms
                            - mdr.last_exchange_ms,
                            model_ms=mdr.last_exchange_ms,
                            bytes=mdr.last_exchange_bytes,
                            iteration=iteration,
                        )
                kernel_ms += t_ms
                unoverlapped_ms += serial + wb_ms
                total_stats += iter_stats
                iterations = iteration
                if config.collect_traces:
                    traces.append(
                        IterationTrace(
                            iteration, updated_total, t_ms, kernel_ms,
                            active_shard_count,
                        )
                    )
                if trace_on:
                    tracer.emit(
                        "writeback", "stage", model_start_ms=iter_start_ms,
                        model_ms=wb_ms, stats=wb_stats, iteration=iteration,
                    )
                    it_span.model_ms = t_ms
                    it_span.attrs["updated_vertices"] = updated_total
                    it_span.attrs["overlap_saved_ms"] = serial - pipelined
                    if frontier_on:
                        it_span.attrs["frontier_direction"] = direction
                        it_span.attrs["active_shards"] = active_shard_count
                        it_span.attrs["active_vertices"] = active_vertices
                    tracer.metrics.histogram(
                        "engine.updated_vertices"
                    ).observe(updated_total)
            if faults.active:
                faults.values(self.name, iteration, vertex_values)
            if updated_total == 0:
                converged = True
                break

        if not converged and not config.allow_partial:
            raise ConvergenceError(
                f"{self.name}/{program.name} did not converge in "
                f"{max_iterations} iterations"
            )
        if faults.active:
            faults.transfer(self.name, "d2h")
        tracer.emit(
            "d2h", "transfer", model_start_ms=h2d_fixed_ms + kernel_ms,
            model_ms=d2h_ms, bytes=graph.num_vertices * vbytes,
        )
        if trace_on:
            m = tracer.metrics
            publish_kernel_stats(m, total_stats)
            m.counter("engine.iterations").inc(
                iterations - config.start_iteration
            )
            m.gauge("streamed.num_chunks").set(C)
            m.gauge("streamed.device_memory_bytes").set(self.device_memory_bytes)
            m.counter("streamed.overlap_saved_ms").inc(
                max(0.0, unoverlapped_ms - kernel_ms)
            )
            if mdr is not None:
                mdr.publish(tracer, engine=self.name)
            if frontier_on:
                m.counter("frontier.edges_processed").inc(
                    frontier.edges_processed
                )
                m.counter("frontier.shards_skipped").inc(
                    frontier.shards_skipped
                )
            run_span.model_ms = h2d_fixed_ms + kernel_ms + d2h_ms
            run_span.attrs["iterations"] = iterations
            run_span.attrs["converged"] = converged
            if frontier_on:
                run_span.attrs["frontier"] = config.frontier
        result = RunResult(
            engine=self.name,
            program=program.name,
            values=vertex_values,
            iterations=iterations,
            converged=converged,
            kernel_time_ms=kernel_ms,
            h2d_ms=h2d_fixed_ms,
            d2h_ms=d2h_ms,
            representation_bytes=cw.memory_bytes(vbytes, ebytes, sbytes),
            stats=total_stats,
            traces=traces,
            num_edges=graph.num_edges,
            exec_path="fast",
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            edges_processed=0 if frontier is None else frontier.edges_processed,
            shards_skipped=0 if frontier is None else frontier.shards_skipped,
            frontier_mask=None if last_mask is None else last_mask.copy(),
            devices=config.devices,
            exchange_bytes=0 if mdr is None else mdr.exchange_bytes,
            exchange_ms=0.0 if mdr is None else mdr.exchange_ms,
        )
        # Extra reporting: how much the overlap saved.
        result.unoverlapped_ms = unoverlapped_ms  # type: ignore[attr-defined]
        result.num_chunks = C  # type: ignore[attr-defined]
        return result

    # ------------------------------------------------------------------
    # Reference path: the original per-shard chunk loop
    # ------------------------------------------------------------------
    def _execute_reference(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig, run_span
    ) -> RunResult:
        max_iterations = config.max_iterations
        tracer = config.tracer
        trace_on = tracer.enabled
        inner = CuShaEngine(
            "cw",
            vertices_per_shard=self.vertices_per_shard,
            spec=self.spec,
            pcie=self.pcie,
        )
        N = inner._choose_shard_size(graph, program)
        cw = ConcatenatedWindows.from_graph(graph, N)
        sh = cw.shards
        S = sh.num_shards
        vbytes = program.vertex_value_bytes
        sbytes = program.static_value_bytes
        ebytes = program.edge_value_bytes
        warp = self.spec.warp_size
        entry_bytes = 4 + vbytes + sbytes + ebytes + 4 + 4  # + mapper slot
        chunks = self._chunk_shards(cw, entry_bytes)
        n = graph.num_vertices
        shard_entry_sizes = np.diff(sh.shard_offsets)
        total_entries = int(sh.shard_offsets[-1])
        mdr = multi_device_run(
            config, S,
            weights=shard_entry_sizes,
            src_unit=graph.src // N,
            dst_unit=graph.dst // N,
            value_bytes=vbytes,
            pcie=self.pcie,
        )

        # ----- frontier state ------------------------------------------------
        frontier_on = config.frontier != "off"
        frontier = None
        last_mask = None
        if frontier_on:
            infl = vertex_influence_csr(graph.src, graph.dst, n, N, S)
            # Write-back runs once per iteration after every chunk (BSP
            # across chunks), so all marks survive: flush_pos == 0.
            frontier = ShardFrontier(
                S, N, infl[0], infl[1],
                resume=config.resume_frontier,
                flush_pos=np.zeros(S, dtype=np.int64),
            )
            last_mask = np.zeros(n, dtype=bool)

        # Host-side state (the "disk" copy); device residency is modeled.
        vertex_values = config.initial_values(graph, program)
        static_all = program.static_values(graph)
        src_value = vertex_values[sh.src_index].copy()
        src_static = None if static_all is None else static_all[sh.src_index]
        ev = program.edge_values(graph)
        edge_vals = None if ev is None else ev[sh.edge_positions]

        def chunk_bytes(c: tuple[int, int]) -> int:
            lo = int(sh.shard_offsets[c[0]])
            hi = int(sh.shard_offsets[c[1]])
            return (hi - lo) * entry_bytes

        def chunk_compute(
            c: tuple[int, int], push: bool = False, track: bool = False
        ) -> tuple[KernelStats, int, list[int], list[np.ndarray], int, int]:
            """Execute stages 1-3 for every (frontier-active) shard in the
            chunk; returns the chunk's kernel stats, updated-vertex count,
            updated shards, updated vertex indices, processed-shard count,
            and changed-vertex count."""
            stats = KernelStats()
            updated = 0
            upd_shards: list[int] = []
            upd_idx: list[np.ndarray] = []
            act_count = 0
            changed_count = 0
            for i in range(*c):
                if push and not frontier.dirty[i]:
                    frontier.shards_skipped += 1
                    continue
                if frontier_on:
                    frontier.dirty[i] = False
                    frontier.edges_processed += int(shard_entry_sizes[i])
                act_count += 1
                lo, hi = sh.vertex_range(i)
                o = int(sh.shard_offsets[i])
                m_i = sh.shard_size(i)
                sl = slice(o, o + m_i)
                old = vertex_values[lo:hi]
                local = program.init_local(old)
                dest_local = sh.dest_index[sl].astype(np.int64) - lo
                msgs, mask = program.messages(
                    src_value[sl],
                    None if src_static is None else src_static[sl],
                    None if edge_vals is None else edge_vals[sl],
                    old[dest_local],
                )
                ops, changed = apply_reductions(
                    program, local, dest_local, msgs, mask, track_changed=track
                )
                if track and changed is not None:
                    changed_count += int(changed.sum())
                stats.add_atomics(shared=ops)
                n_i = hi - lo
                stats.add_load(contiguous_transactions(
                    n_i, vbytes, start_byte=lo * vbytes, warp_size=warp,
                    transaction_bytes=LOAD_GRANULARITY_BYTES))
                stats.add_lanes(*slots_for_contiguous(n_i, warp),
                                instructions_per_row=costs.INSTR_INIT)
                for b in filter(None, (vbytes, 4, sbytes, ebytes)):
                    stats.add_load(contiguous_transactions(
                        m_i, b, start_byte=o * b, warp_size=warp,
                        transaction_bytes=LOAD_GRANULARITY_BYTES))
                stats.add_lanes(*slots_for_contiguous(m_i, warp),
                                instructions_per_row=costs.INSTR_COMPUTE)
                final, upd = program.apply(local, old)
                n_upd = int(upd.sum())
                if n_upd:
                    idx = lo + np.flatnonzero(upd)
                    vertex_values[idx] = final[upd]
                    stats.add_store(gather_transactions(
                        idx, vbytes, warp_size=warp,
                        transaction_bytes=STORE_GRANULARITY_BYTES))
                    updated += n_upd
                    upd_shards.append(i)
                    upd_idx.append(idx)
            return stats, updated, upd_shards, upd_idx, act_count, changed_count

        # Transfers: VertexValues resident once, chunks stream per iteration.
        h2d_fixed_ms = transfer_ms(
            graph.num_vertices * (vbytes + sbytes), self.pcie
        )
        d2h_ms = transfer_ms(graph.num_vertices * vbytes, self.pcie)
        faults = config.faults
        if faults.active:
            faults.launch(self.name, 0, self.device_memory_bytes)
            faults.transfer(self.name, "h2d")
        tracer.emit(
            "h2d", "transfer", model_start_ms=0.0, model_ms=h2d_fixed_ms,
            bytes=graph.num_vertices * (vbytes + sbytes), resident=True,
        )

        total_stats = KernelStats()
        traces: list[IterationTrace] = []
        kernel_ms = 0.0
        unoverlapped_ms = 0.0
        converged = False
        iterations = config.start_iteration

        for iteration in range(config.start_iteration + 1, max_iterations + 1):
            if faults.active:
                faults.kernel(self.name, iteration, config.exec_path)
                if mdr is not None:
                    faults.device(
                        self.name, iteration, config.exec_path, mdr.placement
                    )
            iter_start_ms = h2d_fixed_ms + kernel_ms
            with tracer.span(
                f"iter-{iteration}", "iteration", model_start_ms=iter_start_ms
            ) as it_span:
                push = False
                direction = None
                track = False
                active_vertices = 0
                active_shard_count = 0
                if frontier_on:
                    program.begin_iteration(iteration)
                    if config.frontier == "auto":
                        direction = choose_direction(
                            int(shard_entry_sizes[frontier.dirty].sum()),
                            total_entries,
                        )
                    else:
                        direction = "push"
                    push = direction == "push"
                    track = trace_on
                    last_mask[:] = False
                updated_total = 0
                updated_shards_all: list[int] = []
                upd_idx_all: list[np.ndarray] = []
                compute_times: list[float] = []
                chunk_tt: list[float] = []
                launches = 0
                iter_stats = KernelStats()
                if mdr is not None and push:
                    # Marks only flush at the iteration boundary (flush_pos
                    # == 0), so the dirty set is exactly the shards the
                    # chunk loop is about to process.
                    mdr.note_processed(np.flatnonzero(frontier.dirty))
                for k, c in enumerate(chunks):
                    if push:
                        act_bits = frontier.dirty[c[0]:c[1]]
                        if not act_bits.any():
                            # Quiescent chunk: no kernel launch and no H2D
                            # transfer at all.
                            frontier.shards_skipped += c[1] - c[0]
                            continue
                        cb = int(
                            shard_entry_sizes[c[0]:c[1]][act_bits].sum()
                        ) * entry_bytes
                    else:
                        cb = chunk_bytes(c)
                    tr = transfer_ms(cb, self.pcie)
                    stats, updated, upd_shards, upd_idx, act_count, ch_count = (
                        chunk_compute(c, push, track)
                    )
                    launches += 1
                    if frontier_on:
                        active_shard_count += act_count
                    active_vertices += ch_count
                    updated_total += updated
                    updated_shards_all.extend(upd_shards)
                    upd_idx_all.extend(upd_idx)
                    compute_times.append(self.cost_model.time_ms(stats))
                    chunk_tt.append(tr)
                    iter_stats += stats
                    if trace_on:
                        tracer.emit(
                            f"chunk-{k}-compute", "stage",
                            model_start_ms=iter_start_ms,
                            model_ms=compute_times[-1],
                            stats=stats, iteration=iteration, chunk=k,
                        )
                        tracer.emit(
                            f"chunk-{k}-h2d", "transfer",
                            model_start_ms=iter_start_ms,
                            model_ms=tr,
                            bytes=cb, iteration=iteration, chunk=k,
                        )
                iter_stats.kernel_launches = launches
                if mdr is not None:
                    mdr.note_updated(
                        np.asarray(updated_shards_all, dtype=np.int64)
                    )
                # Write-back (CW) is applied once per iteration after all
                # chunks ran: cross-chunk staging semantics (BSP across chunks).
                wb_stats = KernelStats()
                for i in updated_shards_all:
                    csl = cw.cw_slice(i)
                    src_value[cw.mapper[csl]] = vertex_values[cw.cw_src_index[csl]]
                    L = cw.cw_size(i)
                    cwo = int(cw.cw_offsets[i])
                    wb_stats.add_load(contiguous_transactions(
                        L, 4, start_byte=cwo * 4, warp_size=warp,
                        transaction_bytes=LOAD_GRANULARITY_BYTES))
                    wb_stats.add_store(gather_transactions(
                        cw.mapper[csl], vbytes, warp_size=warp,
                        transaction_bytes=STORE_GRANULARITY_BYTES))
                    wb_stats.add_lanes(*slots_for_contiguous(L, warp),
                                       instructions_per_row=costs.INSTR_WRITEBACK)
                wb_ms = self.cost_model.time_ms(wb_stats)
                iter_stats += wb_stats
                if frontier_on and upd_idx_all:
                    # Iteration-end flush: src_value now carries the new
                    # values, so mark the updaters' shards and everything
                    # they influence (all marks survive under BSP).
                    all_idx = np.concatenate(upd_idx_all)
                    last_mask[all_idx] = True
                    frontier.mark(all_idx)

                # Overlap model: chunk k+1's H2D hides under chunk k's compute.
                pipelined = chunk_tt[0] if chunk_tt else 0.0
                for k, comp in enumerate(compute_times):
                    incoming = chunk_tt[k + 1] if k + 1 < len(chunk_tt) else 0.0
                    pipelined += max(comp, incoming)
                serial = sum(compute_times) + sum(chunk_tt)
                t_ms = pipelined + wb_ms
                if mdr is not None:
                    t_ms = mdr.iteration_time(t_ms)
                    if trace_on and mdr.last_exchange_bytes:
                        tracer.emit(
                            "exchange", "transfer",
                            model_start_ms=iter_start_ms + t_ms
                            - mdr.last_exchange_ms,
                            model_ms=mdr.last_exchange_ms,
                            bytes=mdr.last_exchange_bytes,
                            iteration=iteration,
                        )
                kernel_ms += t_ms
                unoverlapped_ms += serial + wb_ms
                total_stats += iter_stats
                iterations = iteration
                if config.collect_traces:
                    traces.append(
                        IterationTrace(
                            iteration, updated_total, t_ms, kernel_ms,
                            active_shard_count,
                        )
                    )
                if trace_on:
                    tracer.emit(
                        "writeback", "stage", model_start_ms=iter_start_ms,
                        model_ms=wb_ms, stats=wb_stats, iteration=iteration,
                    )
                    it_span.model_ms = t_ms
                    it_span.attrs["updated_vertices"] = updated_total
                    it_span.attrs["overlap_saved_ms"] = serial - pipelined
                    if frontier_on:
                        it_span.attrs["frontier_direction"] = direction
                        it_span.attrs["active_shards"] = active_shard_count
                        it_span.attrs["active_vertices"] = active_vertices
                    tracer.metrics.histogram(
                        "engine.updated_vertices"
                    ).observe(updated_total)
            if faults.active:
                faults.values(self.name, iteration, vertex_values)
            if updated_total == 0:
                converged = True
                break

        if not converged and not config.allow_partial:
            raise ConvergenceError(
                f"{self.name}/{program.name} did not converge in "
                f"{max_iterations} iterations"
            )
        if faults.active:
            faults.transfer(self.name, "d2h")
        tracer.emit(
            "d2h", "transfer", model_start_ms=h2d_fixed_ms + kernel_ms,
            model_ms=d2h_ms, bytes=graph.num_vertices * vbytes,
        )
        if trace_on:
            m = tracer.metrics
            publish_kernel_stats(m, total_stats)
            m.counter("engine.iterations").inc(
                iterations - config.start_iteration
            )
            m.gauge("streamed.num_chunks").set(len(chunks))
            m.gauge("streamed.device_memory_bytes").set(self.device_memory_bytes)
            m.counter("streamed.overlap_saved_ms").inc(
                max(0.0, unoverlapped_ms - kernel_ms)
            )
            if mdr is not None:
                mdr.publish(tracer, engine=self.name)
            if frontier_on:
                m.counter("frontier.edges_processed").inc(
                    frontier.edges_processed
                )
                m.counter("frontier.shards_skipped").inc(
                    frontier.shards_skipped
                )
            run_span.model_ms = h2d_fixed_ms + kernel_ms + d2h_ms
            run_span.attrs["iterations"] = iterations
            run_span.attrs["converged"] = converged
            if frontier_on:
                run_span.attrs["frontier"] = config.frontier
        result = RunResult(
            engine=self.name,
            program=program.name,
            values=vertex_values,
            iterations=iterations,
            converged=converged,
            kernel_time_ms=kernel_ms,
            h2d_ms=h2d_fixed_ms,
            d2h_ms=d2h_ms,
            representation_bytes=cw.memory_bytes(vbytes, ebytes, sbytes),
            stats=total_stats,
            traces=traces,
            num_edges=graph.num_edges,
            exec_path="reference",
            edges_processed=0 if frontier is None else frontier.edges_processed,
            shards_skipped=0 if frontier is None else frontier.shards_skipped,
            frontier_mask=None if last_mask is None else last_mask.copy(),
            devices=config.devices,
            exchange_bytes=0 if mdr is None else mdr.exchange_bytes,
            exchange_ms=0.0 if mdr is None else mdr.exchange_ms,
        )
        # Extra reporting: how much the overlap saved.
        result.unoverlapped_ms = unoverlapped_ms  # type: ignore[attr-defined]
        result.num_chunks = len(chunks)  # type: ignore[attr-defined]
        return result
