"""Per-stage instruction-cost constants.

The cost model charges each warp-row (one lockstep step of 32 lanes) a
number of issued instructions that depends on what the loop body does.
These constants are the model's calibration knobs; they approximate the
instruction counts of the corresponding CUDA loop bodies (address
arithmetic + loads + the user function + loop control).  The reproduced
*ratios* between representations come from transaction and lane counts, not
from these constants — perturbing them shifts all engines together.
"""

INSTR_INIT = 4
"""CuSha stage 1: shared-store of one fetched vertex value."""

INSTR_COMPUTE = 12
"""CuSha stage 2: load entry fields, run ``compute``, shared atomic."""

INSTR_UPDATE = 6
"""CuSha stage 3: ``update_condition`` + conditional global store."""

INSTR_WRITEBACK = 6
"""CuSha stage 4: window read + shared read + global store."""

INSTR_ATOMIC_REPLAY = 1
"""Issue cost of one shared-memory atomic replay round (bank conflict)."""

INSTR_GS_WINDOW_SCAN = 4
"""CuSha stage 4 under G-Shards: per-window bounds check a warp performs
for every window (empty or not) — the scan Concatenated Windows removes."""

INSTR_VWC_EDGE = 12
"""VWC neighbor loop: index load, value gather, ``Compute`` into shared."""

INSTR_VWC_SISD = 10
"""VWC single-lane prologue/epilogue (lines 10-15, 22-25 of Fig. 14)."""

INSTR_VWC_REDUCE = 4
"""One step of the intra-virtual-warp parallel reduction."""
