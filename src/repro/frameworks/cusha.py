"""The CuSha engine (paper sections 3-4, Figure 5).

One simulated GPU block processes one shard per iteration, in the paper's
four stages:

1. fetch the shard's vertex range from ``VertexValues`` into shared memory
   (coalesced loads);
2. run ``compute`` over the shard entries in parallel, reducing into the
   shared local values with shared-memory atomics (coalesced entry loads);
3. run ``update_condition`` and conditionally store back to ``VertexValues``
   (coalesced loads, conditional coalesced stores);
4. if anything updated, propagate the shard's new vertex values into the
   ``SrcValue`` slots of every computation window that sources from this
   shard — warp-per-window walks under G-Shards (``mode="gs"``), one thread
   per Concatenated-Window entry under CW (``mode="cw"``).

Both modes propagate *identical values* (CW merely reorders the write-back
work list), so they converge identically; they differ in the lane- and
transaction-level activity the stats record — exactly the paper's story.

``sync_mode`` selects the shard schedule: ``"wave"`` (default) executes
shards in waves of concurrently-resident blocks with write-backs visible at
wave boundaries — the visibility a real grid of blocks provides, and the
reason CuSha needs a few more iterations than single-version CSR (paper
Figure 7); ``"async"`` makes every write-back immediately visible (fully
sequential schedule), ``"bsp"`` defers all visibility to the iteration
boundary.  All three converge to the same fixpoint; hardware accounting is
identical.

Execution paths
---------------
``config.exec_path`` selects the iteration core.  The default ``"fast"``
path batches each wave into one vectorized step: within a wave, shards only
communicate through ``SrcValue`` (refreshed at wave boundaries) and each
shard exclusively owns its destination-vertex slice, so concatenating a
wave's shard entries and running ``messages`` / ``apply_reductions`` /
``apply`` once over the whole wave is bit-identical to the per-shard loop
(``ufunc.at`` applies updates sequentially in entry order, which the
concatenation preserves).  Hardware pricing uses the segmented helpers so
warp rows never span shard boundaries; the per-shard stage-4 stats are one
matrix whose updated rows are summed per iteration.  ``"reference"``
preserves the original per-shard loop as the equivalence baseline.
"""

from __future__ import annotations

import numpy as np

from repro.cache import graph_fingerprint, resolve_cache
from repro.frameworks import costs
from repro.frameworks.base import (ConvergenceError, Engine, IterationTrace,
                                   RunConfig, RunResult)
from repro.frameworks.frontier import (ShardFrontier, choose_direction,
                                       vertex_influence_csr)
from repro.frameworks.wavebatch import (add_row_into, cusha_static_bundle,
                                        multi_arange, stats_from_row,
                                        STAT_FIELDS)
from repro.graph.cw import ConcatenatedWindows
from repro.graph.digraph import DiGraph
from repro.graph.partition import select_shard_size
from repro.gpu.engine import KernelCostModel
from repro.gpu.memory import (contiguous_transactions, gather_transactions,
                              gather_transactions_segmented, TransactionCount)
from repro.gpu.occupancy import blocks_per_sm, occupancy, shared_mem_per_block
from repro.gpu.pcie import transfer_ms
from repro.gpu.spec import GTX780, GPUSpec, PCIeSpec
from repro.gpu.stats import (KernelStats, LOAD_GRANULARITY_BYTES,
                             STORE_GRANULARITY_BYTES)
from repro.gpu.sharedmem import conflict_replays
from repro.gpu.warp import slots_for_contiguous, slots_for_segments
from repro.placement import multi_device_run
from repro.telemetry.metrics import publish_kernel_stats
from repro.vertexcentric.program import VertexProgram, apply_reductions

__all__ = ["CuShaEngine"]


def _scaled(stats: KernelStats, factor: int) -> KernelStats:
    """A static per-iteration stat repeated over ``factor`` iterations."""
    out = KernelStats()
    out.load_transactions = stats.load_transactions * factor
    out.load_bytes_requested = stats.load_bytes_requested * factor
    out.store_transactions = stats.store_transactions * factor
    out.store_bytes_requested = stats.store_bytes_requested * factor
    out.active_lane_slots = stats.active_lane_slots * factor
    out.total_lane_slots = stats.total_lane_slots * factor
    out.warp_instructions = stats.warp_instructions * factor
    out.shared_atomics = stats.shared_atomics * factor
    out.global_atomics = stats.global_atomics * factor
    return out


def _window_rows_transactions(
    starts: np.ndarray, stops: np.ndarray, item_bytes: int,
    *, warp_size: int = 32, transaction_bytes: int = 128,
) -> TransactionCount:
    """Transactions of warp-per-window walks over contiguous windows.

    Each window ``[starts[k], stops[k])`` (element offsets) is processed in
    rows of ``warp_size`` consecutive elements; every row's byte span is
    priced separately, exactly as the hardware would.
    """
    sizes = stops - starts
    nz = sizes > 0
    if not nz.any():
        return TransactionCount(0, 0)
    st = starts[nz].astype(np.int64)
    sz = sizes[nz].astype(np.int64)
    rows_per = -(-sz // warp_size)
    total_rows = int(rows_per.sum())
    w_idx = np.repeat(np.arange(st.size, dtype=np.int64), rows_per)
    row_starts = np.concatenate([[0], np.cumsum(rows_per)[:-1]])
    row_in_window = np.arange(total_rows, dtype=np.int64) - np.repeat(
        row_starts, rows_per
    )
    row_lo = st[w_idx] + row_in_window * warp_size
    row_hi = np.minimum(row_lo + warp_size, st[w_idx] + sz[w_idx])
    lo_b = row_lo * item_bytes
    hi_b = row_hi * item_bytes
    txs = (hi_b - 1) // transaction_bytes - lo_b // transaction_bytes + 1
    return TransactionCount(int(txs.sum()), int(sz.sum()) * item_bytes)


_EMPTY_SHARDS = np.empty(0, dtype=np.int64)


class CuShaEngine(Engine):
    """CuSha over G-Shards (``mode="gs"``) or Concatenated Windows
    (``mode="cw"``).

    Parameters
    ----------
    mode:
        Representation used for the write-back stage.
    vertices_per_shard:
        The paper's ``|N|``; ``None`` auto-selects via
        :func:`repro.graph.partition.select_shard_size`.
    spec, pcie:
        Hardware models; defaults are the paper's GTX 780 system.
    resident_blocks:
        Blocks CuSha aims to co-locate per SM when auto-selecting ``|N|``
        (the paper's example uses 2).
    sync_mode:
        ``"async"`` (paper) or ``"bsp"`` (ablation); see module docstring.
    cache:
        ``None`` (default) memoizes representations and static stats in the
        process-wide :func:`repro.cache.default_cache`; ``False`` disables
        caching; an explicit :class:`~repro.cache.RepresentationCache`
        scopes it.  Only the fast path consults the cache.
    """

    def __init__(
        self,
        mode: str = "cw",
        *,
        vertices_per_shard: int | None = None,
        spec: GPUSpec = GTX780,
        pcie: PCIeSpec | None = None,
        resident_blocks: int = 2,
        threads_per_block: int = 512,
        sync_mode: str = "wave",
        always_writeback: bool = False,
        cache=None,
    ) -> None:
        if mode not in ("gs", "cw"):
            raise ValueError("mode must be 'gs' or 'cw'")
        if sync_mode not in ("wave", "async", "bsp"):
            raise ValueError("sync_mode must be 'wave', 'async', or 'bsp'")
        self.mode = mode
        self.vertices_per_shard = vertices_per_shard
        self.spec = spec
        self.pcie = pcie or PCIeSpec()
        self.resident_blocks = resident_blocks
        self.threads_per_block = threads_per_block
        self.sync_mode = sync_mode
        # Ablation of Figure 5's ``values_updated`` flag: when set, stage 4
        # runs for every shard every iteration instead of only updated ones.
        self.always_writeback = always_writeback
        self.cache = cache
        self.cost_model = KernelCostModel(spec)
        self.name = f"cusha-{mode}"

    # ------------------------------------------------------------------
    def _choose_shard_size(self, graph: DiGraph, program: VertexProgram) -> int:
        if self.vertices_per_shard is not None:
            return self.vertices_per_shard
        plan = select_shard_size(
            graph,
            target_window_size=self.spec.warp_size,
            shared_mem_per_block_bytes=self.spec.shared_mem_per_sm_bytes
            // self.resident_blocks,
            vertex_value_bytes=program.vertex_value_bytes,
            warp_size=self.spec.warp_size,
        )
        return plan.vertices_per_shard

    def preflight_representations(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig
    ) -> tuple:
        """The CW structure (and through it the shards) this run executes
        over, built via the same cache key :meth:`_run` uses."""
        N = self._choose_shard_size(graph, program)
        cache = resolve_cache(self.cache)
        if cache is not None:
            cw = cache.get(
                ("cw", graph_fingerprint(graph), N),
                lambda: ConcatenatedWindows.from_graph(graph, N),
            )
        else:
            cw = ConcatenatedWindows.from_graph(graph, N)
        return (cw,)

    def predicted_stage_stats(
        self, graph: DiGraph, program: VertexProgram
    ) -> dict[str, KernelStats]:
        """Static per-sweep stats of the four pipeline stages, from the
        same cached bundle the fast path executes with.  Stage 4 is the
        full-sweep cost (every shard writing back)."""
        N = self._choose_shard_size(graph, program)
        vbytes = program.vertex_value_bytes
        sbytes = program.static_value_bytes
        ebytes = program.edge_value_bytes
        warp = self.spec.warp_size
        cache = resolve_cache(self.cache)
        if cache is not None:
            fp = graph_fingerprint(graph)
            cw = cache.get(
                ("cw", fp, N),
                lambda: ConcatenatedWindows.from_graph(graph, N),
            )
            bundle = cache.get(
                ("cusha-stats", fp, self.mode, N, warp, vbytes, sbytes, ebytes),
                lambda: cusha_static_bundle(
                    cw, self.mode, warp, vbytes, sbytes, ebytes
                ),
            )
        else:
            cw = ConcatenatedWindows.from_graph(graph, N)
            bundle = cusha_static_bundle(
                cw, self.mode, warp, vbytes, sbytes, ebytes
            )
        return {
            "stage1-fetch": bundle.base1.copy(),
            "stage2-compute": bundle.base2.copy(),
            "stage3-update": bundle.base3.copy(),
            "stage4-writeback": stats_from_row(bundle.stage4.sum(axis=0)),
        }

    def _wave_size(self, shared_bytes: int) -> int:
        if self.sync_mode == "async":
            return 1
        if self.sync_mode == "bsp":
            return max(1, 10**18)  # effectively all shards in one wave
        resident = max(
            1, blocks_per_sm(self.spec, shared_bytes, self.threads_per_block)
        )
        return max(1, self.spec.num_sms * resident)

    # ------------------------------------------------------------------
    def _run(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig
    ) -> RunResult:
        tracer = config.tracer
        with tracer.span(
            self.name,
            "run",
            engine=self.name,
            program=program.name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        ) as run_span:
            if config.exec_path == "reference":
                return self._execute_reference(graph, program, config, run_span)
            return self._execute_fast(graph, program, config, run_span)

    # ------------------------------------------------------------------
    # Fast path: wave-batched vectorized core
    # ------------------------------------------------------------------
    def _execute_fast(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig, run_span
    ) -> RunResult:
        max_iterations = config.max_iterations
        tracer = config.tracer
        trace_on = tracer.enabled
        N = self._choose_shard_size(graph, program)
        vbytes = program.vertex_value_bytes
        sbytes = program.static_value_bytes
        ebytes = program.edge_value_bytes
        warp = self.spec.warp_size

        cache = resolve_cache(self.cache)
        cache_hits = cache_misses = 0
        if cache is not None:
            hits0, misses0 = cache.counters()
            fp = graph_fingerprint(graph)
            cw = cache.get(
                ("cw", fp, N),
                lambda: ConcatenatedWindows.from_graph(graph, N),
            )
            bundle = cache.get(
                ("cusha-stats", fp, self.mode, N, warp, vbytes, sbytes, ebytes),
                lambda: cusha_static_bundle(
                    cw, self.mode, warp, vbytes, sbytes, ebytes
                ),
            )
            hits1, misses1 = cache.counters()
            cache_hits, cache_misses = hits1 - hits0, misses1 - misses0
            if trace_on:
                tracer.metrics.counter("cache.hits").inc(cache_hits)
                tracer.metrics.counter("cache.misses").inc(cache_misses)
        else:
            cw = ConcatenatedWindows.from_graph(graph, N)
            bundle = cusha_static_bundle(
                cw, self.mode, warp, vbytes, sbytes, ebytes
            )
        sh = cw.shards
        S = sh.num_shards
        n = graph.num_vertices
        mdr = multi_device_run(
            config, S,
            weights=np.diff(sh.shard_offsets),
            src_unit=graph.src // N,
            dst_unit=graph.dst // N,
            value_bytes=vbytes,
            pcie=self.pcie,
        )

        # ----- device arrays -------------------------------------------------
        vertex_values = config.initial_values(graph, program)
        static_all = program.static_values(graph)
        src_value = vertex_values[sh.src_index].copy()
        src_static = None if static_all is None else static_all[sh.src_index]
        ev = program.edge_values(graph)
        edge_vals = None if ev is None else ev[sh.edge_positions]

        base1, base2, base3 = bundle.base1, bundle.base2, bundle.base3
        st4_mat = bundle.stage4
        base = base1 + base2 + base3

        shared_bytes = shared_mem_per_block(N, vbytes)
        occ = occupancy(self.spec, shared_bytes, self.threads_per_block)
        faults = config.faults
        if faults.active:
            faults.launch(
                self.name, shared_bytes, self.spec.shared_mem_per_sm_bytes
            )

        # ----- transfers (Figure 10) -----------------------------------------
        rep_bytes = (
            cw.memory_bytes(vbytes, ebytes, sbytes)
            if self.mode == "cw"
            else sh.memory_bytes(vbytes, ebytes, sbytes)
        )
        h2d_ms = transfer_ms(rep_bytes, self.pcie)
        d2h_ms = transfer_ms(graph.num_vertices * vbytes, self.pcie)
        if faults.active:
            faults.transfer(self.name, "h2d")
        tracer.emit(
            "h2d", "transfer", model_start_ms=0.0, model_ms=h2d_ms,
            bytes=rep_bytes,
        )

        wave_size = min(self._wave_size(shared_bytes), S)

        # Per-wave loop invariants, hoisted out of the iteration loop: the
        # wave's vertex slice, its entry slice, and the destination indices
        # rebased to the wave's vertex origin.
        dest_global = bundle.dest_global
        waves = []
        for a in range(0, S, wave_size):
            b = min(a + wave_size, S)
            vlo = a * N
            vhi = min(b * N, n)
            eo = int(sh.shard_offsets[a])
            ee = int(sh.shard_offsets[b])
            waves.append((a, b, vlo, vhi, eo, ee, dest_global[eo:ee] - vlo))

        # ----- frontier state -------------------------------------------------
        frontier_on = config.frontier != "off"
        frontier = None
        last_mask = None
        st1m = st2m = st3m = None
        full1 = full2 = full3 = None
        entries_per_shard = None
        total_entries = 0
        if frontier_on:
            if cache is not None:
                infl = cache.get(
                    ("frontier", fp, N),
                    lambda: vertex_influence_csr(graph.src, graph.dst, n, N, S),
                )
            else:
                infl = vertex_influence_csr(graph.src, graph.dst, n, N, S)
            frontier = ShardFrontier(
                S, N, infl[0], infl[1],
                resume=config.resume_frontier,
                flush_pos=np.arange(S, dtype=np.int64) // wave_size,
            )
            last_mask = np.zeros(n, dtype=bool)
            st1m, st2m, st3m = bundle.stage1, bundle.stage2, bundle.stage3
            full1 = st1m.sum(axis=0)
            full2 = st2m.sum(axis=0)
            full3 = st3m.sum(axis=0)
            entries_per_shard = np.diff(sh.shard_offsets)
            total_entries = int(sh.shard_offsets[-1])

        # ----- iterate --------------------------------------------------------
        total_stats = KernelStats()
        stage3_dynamic = KernelStats()
        stage2_dynamic = KernelStats()
        stage4_total_row = np.zeros(len(STAT_FIELDS), dtype=np.float64)
        nf = len(STAT_FIELDS)
        s1_total = np.zeros(nf, dtype=np.float64)
        s2_total = np.zeros(nf, dtype=np.float64)
        s3_total = np.zeros(nf, dtype=np.float64)
        traces: list[IterationTrace] = []
        kernel_ms = 0.0
        converged = False
        iterations = config.start_iteration

        for iteration in range(config.start_iteration + 1, max_iterations + 1):
            if faults.active:
                faults.kernel(self.name, iteration, config.exec_path)
                if mdr is not None:
                    faults.device(
                        self.name, iteration, config.exec_path, mdr.placement
                    )
            iter_start_ms = h2d_ms + kernel_ms
            with tracer.span(
                f"iter-{iteration}", "iteration", model_start_ms=iter_start_ms
            ) as it_span:
                push = False
                direction = None
                track = False
                active_vertices = 0
                processed_shards = 0
                if frontier_on:
                    program.begin_iteration(iteration)
                    if config.frontier == "auto":
                        active_edges = int(
                            entries_per_shard[frontier.dirty].sum()
                        )
                        direction = choose_direction(
                            active_edges, total_entries
                        )
                    else:
                        direction = "push"
                    push = direction == "push"
                    track = trace_on
                    last_mask[:] = False
                if push:
                    iter_stats = KernelStats()
                    s1_row = np.zeros(nf, dtype=np.float64)
                    s2_row = np.zeros(nf, dtype=np.float64)
                    s3_row = np.zeros(nf, dtype=np.float64)
                else:
                    iter_stats = base.copy()
                    if frontier_on:
                        s1_row, s2_row, s3_row = full1, full2, full3
                iter_stats.kernel_launches = 1
                if trace_on:
                    dyn2 = KernelStats()
                    dyn3 = KernelStats()
                updated_total = 0
                updated_shard_count = 0
                st4_row = np.zeros(len(STAT_FIELDS), dtype=np.float64)
                for a, b, vlo, vhi, eo, ee, dest_local in waves:
                    sparse = False
                    act = None
                    if push:
                        act = frontier.active(a, b)
                        frontier.shards_skipped += (b - a) - act.size
                        if act.size == 0:
                            continue
                        frontier.clear(act)
                        processed_shards += act.size
                        if mdr is not None:
                            mdr.note_processed(act)
                        sparse = act.size < b - a
                        if not sparse:
                            s1_row += st1m[a:b].sum(axis=0)
                            s2_row += st2m[a:b].sum(axis=0)
                            s3_row += st3m[a:b].sum(axis=0)
                    elif frontier_on:  # pull: dense sweep, clear everything
                        frontier.dirty[a:b] = False
                        processed_shards += b - a
                    if sparse:
                        # Frontier gather: pack the active shards' vertex
                        # slices and entry ranges, rebase destinations into
                        # the packed coordinate space, and run the same
                        # kernels over the subset.
                        v_lo = act * N
                        v_hi = np.minimum(v_lo + N, n)
                        v_cnt = v_hi - v_lo
                        v_idx = multi_arange(v_lo, v_hi)
                        e_lo = sh.shard_offsets[act]
                        e_hi = sh.shard_offsets[act + 1]
                        e_idx = multi_arange(e_lo, e_hi)
                        packed_off = np.zeros(act.size + 1, dtype=np.int64)
                        np.cumsum(v_cnt, out=packed_off[1:])
                        dest_sub = dest_global[e_idx] - np.repeat(
                            v_lo - packed_off[:-1], e_hi - e_lo
                        )
                        frontier.edges_processed += int(e_idx.size)
                        s1_row += st1m[act].sum(axis=0)
                        s2_row += st2m[act].sum(axis=0)
                        s3_row += st3m[act].sum(axis=0)
                        old = vertex_values[v_idx]
                        local = program.init_local(old)
                        msgs, mask = program.messages(
                            src_value[e_idx],
                            None if src_static is None else src_static[e_idx],
                            None if edge_vals is None else edge_vals[e_idx],
                            old[dest_sub],
                        )
                        ops, changed = apply_reductions(
                            program, local, dest_sub, msgs, mask,
                            track_changed=track,
                        )
                    else:
                        if frontier_on:
                            frontier.edges_processed += ee - eo
                        old = vertex_values[vlo:vhi]
                        local = program.init_local(old)
                        msgs, mask = program.messages(
                            src_value[eo:ee],
                            None if src_static is None else src_static[eo:ee],
                            None if edge_vals is None else edge_vals[eo:ee],
                            old[dest_local],
                        )
                        ops, changed = apply_reductions(
                            program, local, dest_local, msgs, mask,
                            track_changed=track,
                        )
                    if track and changed is not None:
                        active_vertices += int(changed.sum())
                    iter_stats.add_atomics(shared=ops)
                    stage2_dynamic.add_atomics(shared=ops)
                    if trace_on:
                        dyn2.add_atomics(shared=ops)
                    final, upd = program.apply(local, old)
                    n_upd = int(upd.sum())
                    wave_shards = _EMPTY_SHARDS
                    idx = None
                    if n_upd:
                        if sparse:
                            pos = np.flatnonzero(upd)
                            idx = v_idx[pos]
                            vertex_values[idx] = final[upd]
                            # Per-shard store pricing over the packed
                            # segments (warp rows never span shards).
                            seg_of = (
                                np.searchsorted(
                                    packed_off, pos, side="right"
                                ) - 1
                            )
                            counts = np.bincount(
                                seg_of, minlength=act.size
                            )
                            seg = np.zeros(act.size + 1, dtype=np.int64)
                            np.cumsum(counts, out=seg[1:])
                            wave_shards = act[np.flatnonzero(counts)]
                        else:
                            idx = vlo + np.flatnonzero(upd)
                            vertex_values[idx] = final[upd]
                            # Per-shard store pricing: segment the updated
                            # indices by owning shard so warp rows never span
                            # shard boundaries (as in the reference loop).
                            counts = np.bincount(idx // N - a, minlength=b - a)
                            seg = np.zeros(b - a + 1, dtype=np.int64)
                            np.cumsum(counts, out=seg[1:])
                            wave_shards = a + np.flatnonzero(counts)
                        store_tc = gather_transactions_segmented(
                            idx, vbytes, seg, warp_size=warp,
                            transaction_bytes=STORE_GRANULARITY_BYTES)
                        iter_stats.add_store(store_tc)
                        stage3_dynamic.add_store(store_tc)
                        if trace_on:
                            dyn3.add_store(store_tc)
                        updated_total += n_upd
                        if frontier_on:
                            last_mask[idx] = True
                    if self.always_writeback:
                        wave_shards = (
                            act if sparse else np.arange(a, b, dtype=np.int64)
                        )
                    if wave_shards.size:
                        updated_shard_count += wave_shards.size
                        if mdr is not None:
                            mdr.note_updated(wave_shards)
                        st4_row += st4_mat[wave_shards].sum(axis=0)
                        # Wave-boundary write-back, batched over the wave's
                        # updated shards (mapper slots are disjoint).
                        if wave_shards.size == b - a:
                            psl = slice(
                                int(cw.cw_offsets[a]), int(cw.cw_offsets[b])
                            )
                            src_value[cw.mapper[psl]] = vertex_values[
                                cw.cw_src_index[psl]
                            ]
                        else:
                            pos = multi_arange(
                                cw.cw_offsets[wave_shards],
                                cw.cw_offsets[wave_shards + 1],
                            )
                            src_value[cw.mapper[pos]] = vertex_values[
                                cw.cw_src_index[pos]
                            ]
                    if frontier_on and idx is not None:
                        # Wave-boundary frontier marking: the updaters' own
                        # shards plus everything they influence (visible to
                        # other shards only now that write-back ran).
                        frontier.mark(idx)
                if push:
                    add_row_into(iter_stats, s1_row + s2_row + s3_row)
                add_row_into(iter_stats, st4_row)
                stage4_total_row += st4_row
                if frontier_on:
                    s1_total += s1_row
                    s2_total += s2_row
                    s3_total += s3_row
                t_ms = self.cost_model.time_ms(iter_stats, occupancy=occ)
                if mdr is not None:
                    t_ms = mdr.iteration_time(t_ms)
                    if trace_on and mdr.last_exchange_bytes:
                        tracer.emit(
                            "exchange", "transfer",
                            model_start_ms=iter_start_ms + t_ms
                            - mdr.last_exchange_ms,
                            model_ms=mdr.last_exchange_ms,
                            bytes=mdr.last_exchange_bytes,
                            iteration=iteration,
                        )
                kernel_ms += t_ms
                total_stats += iter_stats
                iterations = iteration
                if config.collect_traces:
                    traces.append(
                        IterationTrace(
                            iteration, updated_total, t_ms, kernel_ms,
                            processed_shards,
                        )
                    )
                if trace_on:
                    it_span.model_ms = t_ms
                    it_span.attrs["updated_vertices"] = updated_total
                    it_span.attrs["updated_shards"] = updated_shard_count
                    if frontier_on:
                        it_span.attrs["frontier_direction"] = direction
                        it_span.attrs["active_shards"] = processed_shards
                        it_span.attrs["active_vertices"] = active_vertices
                    tracer.metrics.histogram(
                        "engine.updated_vertices"
                    ).observe(updated_total)
                    if frontier_on:
                        span1 = stats_from_row(s1_row)
                        span2 = stats_from_row(s2_row) + dyn2
                        span3 = stats_from_row(s3_row) + dyn3
                    else:
                        span1 = base1.copy()
                        span2 = base2 + dyn2
                        span3 = base3 + dyn3
                    for sname, sstats in (
                        ("stage1-fetch", span1),
                        ("stage2-compute", span2),
                        ("stage3-update", span3),
                        ("stage4-writeback", stats_from_row(st4_row)),
                    ):
                        tracer.emit(
                            sname,
                            "stage",
                            model_start_ms=iter_start_ms,
                            model_ms=self.cost_model.time_ms(
                                sstats, occupancy=occ
                            ),
                            stats=sstats,
                            iteration=iteration,
                        )
            if faults.active:
                faults.values(self.name, iteration, vertex_values)
            if updated_total == 0:
                converged = True
                break

        if not converged and not config.allow_partial:
            raise ConvergenceError(
                f"{self.name}/{program.name} did not converge in "
                f"{max_iterations} iterations"
            )
        if faults.active:
            faults.transfer(self.name, "d2h")
        tracer.emit(
            "d2h", "transfer", model_start_ms=h2d_ms + kernel_ms,
            model_ms=d2h_ms, bytes=graph.num_vertices * vbytes,
        )
        if trace_on:
            m = tracer.metrics
            publish_kernel_stats(m, total_stats)
            m.counter("engine.iterations").inc(
                iterations - config.start_iteration
            )
            m.gauge("cusha.num_shards").set(S)
            m.gauge("cusha.vertices_per_shard").set(N)
            m.gauge("cusha.wave_size").set(wave_size)
            m.gauge("cusha.waves_per_iteration").set(-(-S // wave_size))
            if mdr is not None:
                mdr.publish(tracer, engine=self.name)
            if frontier_on:
                m.counter("frontier.edges_processed").inc(
                    frontier.edges_processed
                )
                m.counter("frontier.shards_skipped").inc(
                    frontier.shards_skipped
                )
            run_span.model_ms = h2d_ms + kernel_ms + d2h_ms
            run_span.attrs["iterations"] = iterations
            run_span.attrs["converged"] = converged
            if frontier_on:
                run_span.attrs["frontier"] = config.frontier
        executed = iterations - config.start_iteration
        if frontier_on:
            stage_stats = {
                "stage1-fetch": stats_from_row(s1_total),
                "stage2-compute": stats_from_row(s2_total) + stage2_dynamic,
                "stage3-update": stats_from_row(s3_total) + stage3_dynamic,
                "stage4-writeback": stats_from_row(stage4_total_row),
            }
        else:
            stage_stats = {
                "stage1-fetch": _scaled(base1, executed),
                "stage2-compute": _scaled(base2, executed) + stage2_dynamic,
                "stage3-update": _scaled(base3, executed) + stage3_dynamic,
                "stage4-writeback": stats_from_row(stage4_total_row),
            }
        return RunResult(
            engine=self.name,
            program=program.name,
            values=vertex_values,
            iterations=iterations,
            converged=converged,
            kernel_time_ms=kernel_ms,
            h2d_ms=h2d_ms,
            d2h_ms=d2h_ms,
            representation_bytes=rep_bytes,
            stats=total_stats,
            traces=traces,
            num_edges=graph.num_edges,
            stage_stats=stage_stats,
            exec_path="fast",
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            edges_processed=0 if frontier is None else frontier.edges_processed,
            shards_skipped=0 if frontier is None else frontier.shards_skipped,
            frontier_mask=None if last_mask is None else last_mask.copy(),
            devices=config.devices,
            exchange_bytes=0 if mdr is None else mdr.exchange_bytes,
            exchange_ms=0.0 if mdr is None else mdr.exchange_ms,
        )

    # ------------------------------------------------------------------
    # Reference path: the original per-shard loop (equivalence baseline)
    # ------------------------------------------------------------------
    def _execute_reference(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig, run_span
    ) -> RunResult:
        max_iterations = config.max_iterations
        tracer = config.tracer
        N = self._choose_shard_size(graph, program)
        cw = ConcatenatedWindows.from_graph(graph, N)
        sh = cw.shards
        S = sh.num_shards
        vbytes = program.vertex_value_bytes
        sbytes = program.static_value_bytes
        ebytes = program.edge_value_bytes
        warp = self.spec.warp_size
        mdr = multi_device_run(
            config, S,
            weights=np.diff(sh.shard_offsets),
            src_unit=graph.src // N,
            dst_unit=graph.dst // N,
            value_bytes=vbytes,
            pcie=self.pcie,
        )

        # ----- device arrays -------------------------------------------------
        vertex_values = config.initial_values(graph, program)
        static_all = program.static_values(graph)
        src_value = vertex_values[sh.src_index].copy()
        src_static = None if static_all is None else static_all[sh.src_index]
        ev = program.edge_values(graph)
        edge_vals = None if ev is None else ev[sh.edge_positions]

        # ----- static per-iteration hardware stats (split per stage) ---------
        # Per-shard resolution throughout (frontier-gated iterations charge
        # only the shards they process); aggregates are exact sums.
        stage1 = [KernelStats() for _ in range(S)]
        stage2 = [KernelStats() for _ in range(S)]
        stage3 = [KernelStats() for _ in range(S)]
        stage4 = [KernelStats() for _ in range(S)]
        # Loop invariants of the iteration loop, computed once: vertex
        # ranges, entry slices, rebased destination indices, CW slices.
        shard_meta: list[tuple[int, int, slice, np.ndarray, slice]] = []
        for i in range(S):
            lo, hi = sh.vertex_range(i)
            n_i = hi - lo
            m_i = sh.shard_size(i)
            o = int(sh.shard_offsets[i])
            sl_i = slice(o, o + m_i)
            dest_local = sh.dest_index[sl_i].astype(np.int64) - lo
            shard_meta.append((lo, hi, sl_i, dest_local, cw.cw_slice(i)))
            st1, st2, st3 = stage1[i], stage2[i], stage3[i]
            # Stage 1: coalesced VertexValues fetch.
            st1.add_load(
                contiguous_transactions(n_i, vbytes, start_byte=lo * vbytes,
                                        warp_size=warp,
                                        transaction_bytes=LOAD_GRANULARITY_BYTES)
            )
            st1.add_lanes(*slots_for_contiguous(n_i, warp),
                          instructions_per_row=costs.INSTR_INIT)
            # Stage 2: coalesced shard-entry loads (SoA field arrays).
            for b in (vbytes, 4):  # SrcValue, DestIndex
                st2.add_load(contiguous_transactions(
                    m_i, b, start_byte=o * b, warp_size=warp,
                    transaction_bytes=LOAD_GRANULARITY_BYTES))
            if sbytes:
                st2.add_load(contiguous_transactions(
                    m_i, sbytes, start_byte=o * sbytes, warp_size=warp,
                    transaction_bytes=LOAD_GRANULARITY_BYTES))
            if ebytes:
                st2.add_load(contiguous_transactions(
                    m_i, ebytes, start_byte=o * ebytes, warp_size=warp,
                    transaction_bytes=LOAD_GRANULARITY_BYTES))
            st2.add_lanes(*slots_for_contiguous(m_i, warp),
                          instructions_per_row=costs.INSTR_COMPUTE)
            # Shared-memory atomic bank conflicts: destination indices that
            # collide modulo the bank count serialize within a warp round.
            replays = conflict_replays(dest_local, warp_size=warp)
            st2.add_instructions(replays * costs.INSTR_ATOMIC_REPLAY)
            # Stage 3: coalesced VertexValues read (stores are dynamic).
            st3.add_load(
                contiguous_transactions(n_i, vbytes, start_byte=lo * vbytes,
                                        warp_size=warp,
                                        transaction_bytes=LOAD_GRANULARITY_BYTES)
            )
            st3.add_lanes(*slots_for_contiguous(n_i, warp),
                          instructions_per_row=costs.INSTR_UPDATE)
            # Stage 4 (charged only on iterations where the shard updates).
            st4 = stage4[i]
            if self.mode == "gs":
                starts = sh.window_offsets[:, i].copy()
                stops = sh.window_offsets[:, i + 1].copy()
                st4.add_load(_window_rows_transactions(
                    starts, stops, 4, warp_size=warp,
                    transaction_bytes=LOAD_GRANULARITY_BYTES))
                st4.add_store(_window_rows_transactions(
                    starts, stops, vbytes, warp_size=warp,
                    transaction_bytes=STORE_GRANULARITY_BYTES))
                active, total = slots_for_segments(stops - starts, warp)
                st4.add_lanes(active, total,
                              instructions_per_row=costs.INSTR_WRITEBACK)
                # The warps must visit every window W_ij — including empty
                # ones — to read its bounds and decide whether to copy: a
                # per-shard cost linear in S (quadratic per iteration) that
                # CW eliminates.  Bounds live in a transposed, contiguous
                # offsets row.
                st4.add_load(contiguous_transactions(
                    S + 1, 8, warp_size=warp,
                    transaction_bytes=LOAD_GRANULARITY_BYTES))
                st4.add_instructions(S * costs.INSTR_GS_WINDOW_SCAN)
            else:
                L = cw.cw_size(i)
                cwo = int(cw.cw_offsets[i])
                # SrcIndex and Mapper are both contiguous 4-byte reads over
                # the same CW slot range, so their pricing is identical:
                # compute once, charge twice.  The SrcValue stores scatter
                # through the mapper.
                cw_read = contiguous_transactions(
                    L, 4, start_byte=cwo * 4, warp_size=warp,
                    transaction_bytes=LOAD_GRANULARITY_BYTES)
                st4.add_load(cw_read)
                st4.add_load(cw_read)
                st4.add_store(gather_transactions(
                    cw.mapper[cw.cw_slice(i)], vbytes, warp_size=warp,
                    transaction_bytes=STORE_GRANULARITY_BYTES))
                st4.add_lanes(*slots_for_contiguous(L, warp),
                              instructions_per_row=costs.INSTR_WRITEBACK)
        base1 = sum(stage1, KernelStats())
        base2 = sum(stage2, KernelStats())
        base3 = sum(stage3, KernelStats())
        base = base1 + base2 + base3

        shared_bytes = shared_mem_per_block(N, vbytes)
        occ = occupancy(self.spec, shared_bytes, self.threads_per_block)
        faults = config.faults
        if faults.active:
            faults.launch(
                self.name, shared_bytes, self.spec.shared_mem_per_sm_bytes
            )

        # ----- transfers (Figure 10) -----------------------------------------
        rep_bytes = (
            cw.memory_bytes(vbytes, ebytes, sbytes)
            if self.mode == "cw"
            else sh.memory_bytes(vbytes, ebytes, sbytes)
        )
        h2d_ms = transfer_ms(rep_bytes, self.pcie)
        d2h_ms = transfer_ms(graph.num_vertices * vbytes, self.pcie)
        if faults.active:
            faults.transfer(self.name, "h2d")
        tracer.emit(
            "h2d", "transfer", model_start_ms=0.0, model_ms=h2d_ms,
            bytes=rep_bytes,
        )

        # ----- iterate --------------------------------------------------------
        total_stats = KernelStats()
        stage3_dynamic = KernelStats()
        stage2_dynamic = KernelStats()
        stage4_total = KernelStats()
        traces: list[IterationTrace] = []
        kernel_ms = 0.0
        converged = False
        iterations = config.start_iteration

        # Shards execute in waves of concurrently resident blocks; a shard's
        # write-back becomes visible to other shards only at its wave
        # boundary — the visibility a real grid of blocks on num_sms SMs
        # provides (and the reason CuSha needs a few more iterations than
        # the single-version CSR baselines, paper Figure 7).
        wave_size = min(self._wave_size(shared_bytes), S)

        # ----- frontier state -------------------------------------------------
        frontier_on = config.frontier != "off"
        frontier = None
        last_mask = None
        entries_per_shard = None
        total_entries = 0
        stage1_run = KernelStats()
        stage2_run = KernelStats()
        stage3_run = KernelStats()
        if frontier_on:
            n = graph.num_vertices
            infl = vertex_influence_csr(graph.src, graph.dst, n, N, S)
            frontier = ShardFrontier(
                S, N, infl[0], infl[1],
                resume=config.resume_frontier,
                flush_pos=np.arange(S, dtype=np.int64) // wave_size,
            )
            last_mask = np.zeros(n, dtype=bool)
            entries_per_shard = np.diff(sh.shard_offsets)
            total_entries = int(sh.shard_offsets[-1])

        trace_on = tracer.enabled
        for iteration in range(config.start_iteration + 1, max_iterations + 1):
            if faults.active:
                faults.kernel(self.name, iteration, config.exec_path)
                if mdr is not None:
                    faults.device(
                        self.name, iteration, config.exec_path, mdr.placement
                    )
            iter_start_ms = h2d_ms + kernel_ms
            with tracer.span(
                f"iter-{iteration}", "iteration", model_start_ms=iter_start_ms
            ) as it_span:
                push = False
                direction = None
                track = False
                active_vertices = 0
                processed_shards = 0
                if frontier_on:
                    program.begin_iteration(iteration)
                    if config.frontier == "auto":
                        active_edges = int(
                            entries_per_shard[frontier.dirty].sum()
                        )
                        direction = choose_direction(
                            active_edges, total_entries
                        )
                    else:
                        direction = "push"
                    push = direction == "push"
                    track = trace_on
                    last_mask[:] = False
                if push:
                    iter_stats = KernelStats()
                    s1_it = KernelStats()
                    s2_it = KernelStats()
                    s3_it = KernelStats()
                elif frontier_on:
                    iter_stats = base.copy()
                    s1_it = base1.copy()
                    s2_it = base2.copy()
                    s3_it = base3.copy()
                else:
                    iter_stats = base.copy()
                iter_stats.kernel_launches = 1
                if trace_on:
                    # Per-iteration dynamic deltas, tracked only when a real
                    # tracer is attached so untraced runs do no extra work.
                    dyn2 = KernelStats()
                    dyn3 = KernelStats()
                    st4_iter = KernelStats()
                updated_total = 0
                updated_shards: list[int] = []
                mdr_processed: list[int] = []
                pending_writeback: list[int] = []
                wave_upd: list[np.ndarray] = []
                for i in range(S):
                    skip = push and not frontier.dirty[i]
                    if skip:
                        frontier.shards_skipped += 1
                    else:
                        if push and mdr is not None:
                            mdr_processed.append(i)
                        if frontier_on:
                            frontier.dirty[i] = False
                            frontier.edges_processed += int(
                                entries_per_shard[i]
                            )
                            processed_shards += 1
                            if push:
                                s1_it += stage1[i]
                                s2_it += stage2[i]
                                s3_it += stage3[i]
                                iter_stats += stage1[i]
                                iter_stats += stage2[i]
                                iter_stats += stage3[i]
                        lo, hi, sl, dest_local, _csl = shard_meta[i]
                        old = vertex_values[lo:hi]
                        local = program.init_local(old)
                        msgs, mask = program.messages(
                            src_value[sl],
                            None if src_static is None else src_static[sl],
                            None if edge_vals is None else edge_vals[sl],
                            old[dest_local],
                        )
                        ops, changed = apply_reductions(
                            program, local, dest_local, msgs, mask,
                            track_changed=track,
                        )
                        if track and changed is not None:
                            active_vertices += int(changed.sum())
                        iter_stats.add_atomics(shared=ops)
                        stage2_dynamic.add_atomics(shared=ops)
                        if trace_on:
                            dyn2.add_atomics(shared=ops)
                        final, upd = program.apply(local, old)
                        n_upd = int(upd.sum())
                        if n_upd:
                            idx = lo + np.flatnonzero(upd)
                            vertex_values[idx] = final[upd]
                            store_tc = gather_transactions(
                                idx, vbytes, warp_size=warp,
                                transaction_bytes=STORE_GRANULARITY_BYTES)
                            iter_stats.add_store(store_tc)
                            stage3_dynamic.add_store(store_tc)
                            if trace_on:
                                dyn3.add_store(store_tc)
                            updated_total += n_upd
                            updated_shards.append(i)
                            pending_writeback.append(i)
                            if frontier_on:
                                last_mask[idx] = True
                                wave_upd.append(idx)
                        elif self.always_writeback:
                            updated_shards.append(i)
                            pending_writeback.append(i)
                    if (i + 1) % wave_size == 0 or i == S - 1:
                        for j in pending_writeback:
                            csl = shard_meta[j][4]
                            src_value[cw.mapper[csl]] = vertex_values[
                                cw.cw_src_index[csl]
                            ]
                        pending_writeback.clear()
                        if frontier_on and wave_upd:
                            # Wave-boundary frontier marking, in lockstep
                            # with write-back visibility.
                            frontier.mark(np.concatenate(wave_upd))
                            wave_upd.clear()
                if mdr is not None:
                    if push:
                        mdr.note_processed(
                            np.asarray(mdr_processed, dtype=np.int64)
                        )
                    mdr.note_updated(
                        np.asarray(updated_shards, dtype=np.int64)
                    )
                for i in updated_shards:
                    iter_stats += stage4[i]
                    stage4_total += stage4[i]
                    if trace_on:
                        st4_iter += stage4[i]
                if frontier_on:
                    stage1_run += s1_it
                    stage2_run += s2_it
                    stage3_run += s3_it
                t_ms = self.cost_model.time_ms(iter_stats, occupancy=occ)
                if mdr is not None:
                    t_ms = mdr.iteration_time(t_ms)
                    if trace_on and mdr.last_exchange_bytes:
                        tracer.emit(
                            "exchange", "transfer",
                            model_start_ms=iter_start_ms + t_ms
                            - mdr.last_exchange_ms,
                            model_ms=mdr.last_exchange_ms,
                            bytes=mdr.last_exchange_bytes,
                            iteration=iteration,
                        )
                kernel_ms += t_ms
                total_stats += iter_stats
                iterations = iteration
                if config.collect_traces:
                    traces.append(
                        IterationTrace(
                            iteration, updated_total, t_ms, kernel_ms,
                            processed_shards,
                        )
                    )
                if trace_on:
                    it_span.model_ms = t_ms
                    it_span.attrs["updated_vertices"] = updated_total
                    it_span.attrs["updated_shards"] = len(updated_shards)
                    if frontier_on:
                        it_span.attrs["frontier_direction"] = direction
                        it_span.attrs["active_shards"] = processed_shards
                        it_span.attrs["active_vertices"] = active_vertices
                    tracer.metrics.histogram(
                        "engine.updated_vertices"
                    ).observe(updated_total)
                    # Stage spans: the stage's stats delta this iteration plus
                    # its standalone modeled cost (no launch overhead — the
                    # per-stage stats carry kernel_launches=0).
                    if frontier_on:
                        span1 = s1_it.copy()
                        span2 = s2_it + dyn2
                        span3 = s3_it + dyn3
                    else:
                        span1 = base1.copy()
                        span2 = base2 + dyn2
                        span3 = base3 + dyn3
                    for sname, sstats in (
                        ("stage1-fetch", span1),
                        ("stage2-compute", span2),
                        ("stage3-update", span3),
                        ("stage4-writeback", st4_iter),
                    ):
                        tracer.emit(
                            sname,
                            "stage",
                            model_start_ms=iter_start_ms,
                            model_ms=self.cost_model.time_ms(
                                sstats, occupancy=occ
                            ),
                            stats=sstats,
                            iteration=iteration,
                        )
            if faults.active:
                faults.values(self.name, iteration, vertex_values)
            if updated_total == 0:
                converged = True
                break

        if not converged and not config.allow_partial:
            raise ConvergenceError(
                f"{self.name}/{program.name} did not converge in "
                f"{max_iterations} iterations"
            )
        if faults.active:
            faults.transfer(self.name, "d2h")
        tracer.emit(
            "d2h", "transfer", model_start_ms=h2d_ms + kernel_ms,
            model_ms=d2h_ms, bytes=graph.num_vertices * vbytes,
        )
        if trace_on:
            m = tracer.metrics
            publish_kernel_stats(m, total_stats)
            m.counter("engine.iterations").inc(
                iterations - config.start_iteration
            )
            m.gauge("cusha.num_shards").set(S)
            m.gauge("cusha.vertices_per_shard").set(N)
            m.gauge("cusha.wave_size").set(wave_size)
            m.gauge("cusha.waves_per_iteration").set(-(-S // wave_size))
            if mdr is not None:
                mdr.publish(tracer, engine=self.name)
            if frontier_on:
                m.counter("frontier.edges_processed").inc(
                    frontier.edges_processed
                )
                m.counter("frontier.shards_skipped").inc(
                    frontier.shards_skipped
                )
            run_span.model_ms = h2d_ms + kernel_ms + d2h_ms
            run_span.attrs["iterations"] = iterations
            run_span.attrs["converged"] = converged
            if frontier_on:
                run_span.attrs["frontier"] = config.frontier
        executed = iterations - config.start_iteration
        if frontier_on:
            stage_stats = {
                "stage1-fetch": stage1_run,
                "stage2-compute": stage2_run + stage2_dynamic,
                "stage3-update": stage3_run + stage3_dynamic,
                "stage4-writeback": stage4_total,
            }
        else:
            stage_stats = {
                "stage1-fetch": _scaled(base1, executed),
                "stage2-compute": _scaled(base2, executed) + stage2_dynamic,
                "stage3-update": _scaled(base3, executed) + stage3_dynamic,
                "stage4-writeback": stage4_total,
            }
        return RunResult(
            engine=self.name,
            program=program.name,
            values=vertex_values,
            iterations=iterations,
            converged=converged,
            kernel_time_ms=kernel_ms,
            h2d_ms=h2d_ms,
            d2h_ms=d2h_ms,
            representation_bytes=rep_bytes,
            stats=total_stats,
            traces=traces,
            num_edges=graph.num_edges,
            stage_stats=stage_stats,
            exec_path="reference",
            edges_processed=0 if frontier is None else frontier.edges_processed,
            shards_skipped=0 if frontier is None else frontier.shards_skipped,
            frontier_mask=None if last_mask is None else last_mask.copy(),
            devices=config.devices,
            exchange_bytes=0 if mdr is None else mdr.exchange_bytes,
            exchange_ms=0.0 if mdr is None else mdr.exchange_ms,
        )
