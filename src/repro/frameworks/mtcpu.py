"""Multithreaded CPU CSR baseline (the paper's MTCPU-CSR).

The paper's baseline is a pthreads implementation where each thread owns a
contiguous range of vertices of the incoming-edge CSR.  Python threads
cannot reproduce that timing directly (the GIL serializes them), so this
engine computes the *values* with the same chunked-per-thread semantics and
prices the run with a calibrated multicore cost model
(:class:`repro.gpu.spec.CPUSpec`):

- issue time — per-edge and per-vertex instruction costs divided by the
  effective parallelism of the chosen thread count (physical cores, then
  diminishing SMT returns, then oversubscription penalties);
- memory time — streamed CSR bytes plus the random ``VertexValues`` gather,
  whose cache-line miss rate grows as the vertex working set outgrows the
  LLC;
- synchronization — one barrier per iteration, linear in thread count.

As in the paper, the *best* thread count depends on the graph, and a
single-thread run bounds the CPU's worst case (Table 6's maxima).
"""

from __future__ import annotations

from repro.frameworks.base import (ConvergenceError, Engine, IterationTrace,
                                   RunConfig, RunResult)
from repro.cache import graph_fingerprint, resolve_cache
from repro.frameworks.csrloop import CSRProblem, iterate_chunks
from repro.graph.csr import CSR
from repro.graph.digraph import DiGraph
from repro.gpu.spec import CPUSpec, I7_3930K
from repro.gpu.stats import KernelStats
from repro.vertexcentric.program import VertexProgram

__all__ = ["MTCPUEngine", "MTCPU_THREAD_COUNTS"]

MTCPU_THREAD_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
"""The thread counts the paper sweeps."""


class MTCPUEngine(Engine):
    """CSR processing on the modeled host CPU with ``threads`` workers."""

    def __init__(
        self, threads: int = 12, *, spec: CPUSpec = I7_3930K, cache=None
    ) -> None:
        if threads < 1:
            raise ValueError("threads must be positive")
        self.threads = threads
        self.spec = spec
        self.cache = cache
        self.name = f"mtcpu-{threads}"

    # ------------------------------------------------------------------
    def _iteration_ms(self, graph: DiGraph, program: VertexProgram) -> float:
        spec = self.spec
        n, m = graph.num_vertices, graph.num_edges
        vbytes = program.vertex_value_bytes
        ebytes = program.edge_value_bytes
        sbytes = program.static_value_bytes

        issue_cycles = m * spec.edge_cycles + n * spec.vertex_cycles
        issue_s = issue_cycles / (spec.clock_ghz * 1e9) / spec.effective_parallelism(
            self.threads
        )

        # Random gathers: one potential cache line per edge, discounted by
        # how much of the vertex working set the LLC covers.
        working_set = max(1, n * (vbytes + sbytes))
        miss_rate = min(1.0, max(0.05, 1.0 - spec.llc_bytes / working_set))
        random_bytes = m * spec.cache_line_bytes * miss_rate
        stream_bytes = m * (4 + ebytes) + n * (2 * vbytes + 8)
        mem_s = (random_bytes + stream_bytes) / (spec.mem_bandwidth_gb_per_s * 1e9)

        sync_s = self.threads * spec.sync_overhead_us_per_thread / 1e6
        return (max(issue_s, mem_s) + sync_s) * 1e3

    # ------------------------------------------------------------------
    def preflight_representations(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig
    ) -> tuple:
        """The CSR this run iterates, via the same cache key ``_run`` uses."""
        cache_opt = False if config.exec_path == "reference" else self.cache
        cache = resolve_cache(cache_opt)
        if cache is not None:
            csr = cache.get(
                ("csr", graph_fingerprint(graph)),
                lambda: CSR.from_graph(graph),
            )
        else:
            csr = CSR.from_graph(graph)
        return (csr,)

    def predicted_stage_stats(
        self, graph: DiGraph, program: VertexProgram
    ) -> dict[str, KernelStats]:
        """The CPU baseline emits no GPU kernel stats: nothing to
        predict (its time model is analytic, not counter-driven)."""
        return {}

    # ------------------------------------------------------------------
    def _run(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig
    ) -> RunResult:
        max_iterations = config.max_iterations
        tracer = config.tracer
        trace_on = tracer.enabled
        with tracer.span(
            self.name,
            "run",
            engine=self.name,
            program=program.name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            threads=self.threads,
        ) as run_span:
            cache_opt = (
                False if config.exec_path == "reference" else self.cache
            )
            cache = resolve_cache(cache_opt)
            cache_hits = cache_misses = 0
            if cache is not None:
                hits0, misses0 = cache.counters()
            problem = CSRProblem.build(graph, program, cache=cache_opt)
            if cache is not None:
                hits1, misses1 = cache.counters()
                cache_hits, cache_misses = hits1 - hits0, misses1 - misses0
            if config.resume_values is not None:
                problem.vertex_values = config.initial_values(graph, program)
            chunk = max(1, -(-graph.num_vertices // self.threads))
            iter_ms = self._iteration_ms(graph, program)

            faults = config.faults
            traces: list[IterationTrace] = []
            kernel_ms = 0.0
            converged = False
            iterations = config.start_iteration
            for iteration in range(
                config.start_iteration + 1, max_iterations + 1
            ):
                if faults.active:
                    faults.kernel(self.name, iteration, config.exec_path)
                with tracer.span(
                    f"iter-{iteration}", "iteration", model_start_ms=kernel_ms
                ) as it_span:
                    updated_idx, _ops = iterate_chunks(
                        problem,
                        chunk,
                        metrics=tracer.metrics if trace_on else None,
                    )
                    kernel_ms += iter_ms
                    iterations = iteration
                    if config.collect_traces:
                        traces.append(
                            IterationTrace(
                                iteration, int(updated_idx.size), iter_ms,
                                kernel_ms,
                            )
                        )
                    if trace_on:
                        it_span.model_ms = iter_ms
                        it_span.attrs["updated_vertices"] = int(updated_idx.size)
                        tracer.metrics.histogram(
                            "engine.updated_vertices"
                        ).observe(int(updated_idx.size))
                if faults.active:
                    faults.values(self.name, iteration, problem.vertex_values)
                if updated_idx.size == 0:
                    converged = True
                    break
            if not converged and not config.allow_partial:
                raise ConvergenceError(
                    f"{self.name}/{program.name} did not converge in "
                    f"{max_iterations} iterations"
                )
            if trace_on:
                m = tracer.metrics
                m.counter("engine.iterations").inc(
                    iterations - config.start_iteration
                )
                m.gauge("mtcpu.threads").set(self.threads)
                m.gauge("mtcpu.chunk_vertices").set(chunk)
                run_span.model_ms = kernel_ms
                run_span.attrs["iterations"] = iterations
                run_span.attrs["converged"] = converged
        rep_bytes = problem.csr.memory_bytes(
            program.vertex_value_bytes,
            program.edge_value_bytes,
            program.static_value_bytes,
        )
        return RunResult(
            engine=self.name,
            program=program.name,
            values=problem.vertex_values,
            iterations=iterations,
            converged=converged,
            kernel_time_ms=kernel_ms,
            h2d_ms=0.0,  # CPU runs pay no PCIe transfers
            d2h_ms=0.0,
            representation_bytes=rep_bytes,
            stats=KernelStats(),  # no GPU profiler metrics for CPU runs
            traces=traces,
            num_edges=graph.num_edges,
            exec_path=config.exec_path,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )
