"""Vectorized building blocks for the wave-batched engine fast paths.

The CuSha engines' reference implementation loops over shards in Python —
thousands of tiny numpy calls per iteration on sparse graphs where the
shard count ``S`` is large.  This module provides the batched equivalents:

- per-shard static :class:`~repro.gpu.stats.KernelStats` computed as one
  ``(S, 9)`` matrix (:data:`STAT_FIELDS` column order) via the segmented
  pricing helpers, so per-iteration stage-4 accrual is a row sum instead of
  ``S`` object additions;
- :func:`cusha_static_bundle` / :func:`streamed_static_bundle` — the whole
  O(S) setup loop of ``cusha.py`` / ``streamed.py`` evaluated without a
  Python-level shard loop (and cacheable across runs, see
  :mod:`repro.cache`);
- :func:`multi_arange` — concatenated index ranges for batched CW
  write-backs.

Everything here is **equivalence-gated**: every quantity is integer-valued
(the ``INSTR_*`` costs are integers and lane-slot totals are warp
multiples), so the vectorized float64 sums are exact and the resulting
stats match the reference per-shard loop field by field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frameworks import costs
from repro.gpu.memory import (
    contiguous_transactions,
    contiguous_transactions_segmented,
    gather_transactions_segmented,
)
from repro.gpu.sharedmem import conflict_replays_segmented
from repro.gpu.stats import (KernelStats, LOAD_GRANULARITY_BYTES,
                             STORE_GRANULARITY_BYTES)

__all__ = [
    "STAT_FIELDS",
    "stats_from_row",
    "add_row_into",
    "multi_arange",
    "contiguous_slots",
    "window_rows_grouped",
    "CuShaStaticBundle",
    "cusha_static_bundle",
    "StreamedStaticBundle",
    "streamed_static_bundle",
]

#: Column order of the per-shard stats matrices (``kernel_launches`` is
#: always zero for stage stats and is omitted).
STAT_FIELDS = (
    "load_transactions",
    "load_bytes_requested",
    "store_transactions",
    "store_bytes_requested",
    "active_lane_slots",
    "total_lane_slots",
    "warp_instructions",
    "shared_atomics",
    "global_atomics",
)

_WINDOW_CHUNK = 1 << 20


def stats_from_row(row: np.ndarray) -> KernelStats:
    """A :class:`KernelStats` from one matrix row (integers exact)."""
    s = KernelStats()
    add_row_into(s, row)
    return s


def add_row_into(stats: KernelStats, row: np.ndarray) -> None:
    """Accumulate one stats-matrix row into ``stats`` in place."""
    stats.load_transactions += int(row[0])
    stats.load_bytes_requested += int(row[1])
    stats.store_transactions += int(row[2])
    stats.store_bytes_requested += int(row[3])
    stats.active_lane_slots += int(row[4])
    stats.total_lane_slots += int(row[5])
    stats.warp_instructions += float(row[6])
    stats.shared_atomics += int(row[7])
    stats.global_atomics += int(row[8])


def multi_arange(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """``concatenate([arange(a, b) for a, b in zip(starts, stops)])``."""
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    sizes = stops - starts
    total = int(sizes.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    return (
        np.arange(total, dtype=np.int64)
        + np.repeat(starts - offsets, sizes)
    )


def contiguous_slots(sizes: np.ndarray, warp_size: int) -> tuple[int, int]:
    """Summed :func:`~repro.gpu.warp.slots_for_contiguous` over many lists."""
    sizes = np.asarray(sizes, dtype=np.int64)
    active = int(sizes.sum())
    rows = int((-(-sizes // warp_size)).sum())
    return active, rows * warp_size


def window_rows_grouped(
    starts: np.ndarray,
    stops: np.ndarray,
    group: np.ndarray,
    num_groups: int,
    item_bytes: int,
    *,
    warp_size: int = 32,
    transaction_bytes: int = 128,
) -> np.ndarray:
    """Per-group transaction counts of warp-per-window walks.

    The row math mirrors ``cusha._window_rows_transactions`` exactly; each
    window's rows are attributed to ``group[k]`` and summed per group.
    """
    sizes = stops - starts
    nz = sizes > 0
    per_group = np.zeros(num_groups, dtype=np.int64)
    if not nz.any():
        return per_group
    st = starts[nz].astype(np.int64)
    sz = sizes[nz].astype(np.int64)
    grp = np.asarray(group)[nz]
    rows_per = -(-sz // warp_size)
    total_rows = int(rows_per.sum())
    w_idx = np.repeat(np.arange(st.size, dtype=np.int64), rows_per)
    row_starts = np.concatenate([[0], np.cumsum(rows_per)[:-1]])
    row_in_window = np.arange(total_rows, dtype=np.int64) - np.repeat(
        row_starts, rows_per
    )
    row_lo = st[w_idx] + row_in_window * warp_size
    row_hi = np.minimum(row_lo + warp_size, st[w_idx] + sz[w_idx])
    lo_b = row_lo * item_bytes
    hi_b = row_hi * item_bytes
    txs = (hi_b - 1) // transaction_bytes - lo_b // transaction_bytes + 1
    sums = np.bincount(grp[w_idx], weights=txs, minlength=num_groups)
    per_group += sums.astype(np.int64)
    return per_group


# ----------------------------------------------------------------------
# CuSha (resident) static bundle
# ----------------------------------------------------------------------
@dataclass
class CuShaStaticBundle:
    """Everything the CuSha fast path precomputes once per (graph, N, mode,
    program layout): the per-iteration base stats of stages 1-3 (both as
    aggregates and as per-shard matrices — frontier-gated sweeps charge row
    sums over the shards actually processed) and the per-shard stage-4
    stats matrix."""

    base1: KernelStats
    base2: KernelStats
    base3: KernelStats
    stage1: np.ndarray  # (S, len(STAT_FIELDS)) float64
    stage2: np.ndarray  # (S, len(STAT_FIELDS)) float64
    stage3: np.ndarray  # (S, len(STAT_FIELDS)) float64
    stage4: np.ndarray  # (S, len(STAT_FIELDS)) float64
    dest_global: np.ndarray  # dest_index as int64 (shared, read-only)


def _stage_base_matrices(
    sh, warp: int, vbytes: int, sbytes: int, ebytes: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stages 1-3 per-shard static stats matrices, vectorized over shards.

    Every entry is integer-valued, so the aggregate stats (``base1`` etc.)
    are exact row sums of these matrices — the frontier-gated partial sums
    and the historical full-sweep aggregates can never drift apart.
    """
    n = sh.num_vertices
    N = sh.vertices_per_shard
    S = sh.num_shards
    lo_arr = np.arange(S, dtype=np.int64) * N
    n_arr = np.minimum(lo_arr + N, n) - lo_arr
    m_arr = np.diff(sh.shard_offsets)
    o_arr = sh.shard_offsets[:-1]
    n_rows = -(-n_arr // warp)
    m_rows = -(-m_arr // warp)

    st1 = np.zeros((S, len(STAT_FIELDS)), dtype=np.float64)
    _, tx = contiguous_transactions_segmented(
        n_arr, vbytes, start_bytes=lo_arr * vbytes, warp_size=warp,
        transaction_bytes=LOAD_GRANULARITY_BYTES, per_segment=True)
    st1[:, 0] = tx
    st1[:, 1] = n_arr * vbytes
    st1[:, 4] = n_arr
    st1[:, 5] = n_rows * warp
    st1[:, 6] = n_rows * costs.INSTR_INIT

    st2 = np.zeros((S, len(STAT_FIELDS)), dtype=np.float64)
    for b in filter(None, (vbytes, 4, sbytes, ebytes)):
        # SrcValue, DestIndex, then the optional static / edge fields.
        _, tx = contiguous_transactions_segmented(
            m_arr, b, start_bytes=o_arr * b, warp_size=warp,
            transaction_bytes=LOAD_GRANULARITY_BYTES, per_segment=True)
        st2[:, 0] += tx
        st2[:, 1] += m_arr * b
    st2[:, 4] = m_arr
    st2[:, 5] = m_rows * warp
    dest_rel = sh.dest_index.astype(np.int64) - np.repeat(lo_arr, m_arr)
    _, replays = conflict_replays_segmented(
        dest_rel, sh.shard_offsets, warp_size=warp, per_segment=True
    )
    st2[:, 6] = (
        m_rows * costs.INSTR_COMPUTE + replays * costs.INSTR_ATOMIC_REPLAY
    )

    st3 = np.zeros((S, len(STAT_FIELDS)), dtype=np.float64)
    st3[:, 0] = st1[:, 0]
    st3[:, 1] = st1[:, 1]
    st3[:, 4] = n_arr
    st3[:, 5] = n_rows * warp
    st3[:, 6] = n_rows * costs.INSTR_UPDATE
    return st1, st2, st3


def _stage4_matrix_cw(cw, warp: int, vbytes: int) -> np.ndarray:
    S = cw.num_shards
    L_arr = np.diff(cw.cw_offsets)
    mat = np.zeros((S, len(STAT_FIELDS)), dtype=np.float64)
    # SrcIndex and Mapper are both contiguous 4-byte reads over the same CW
    # slot range, so their pricing is identical: compute once, charge twice.
    _, load_tx = contiguous_transactions_segmented(
        L_arr, 4, start_bytes=cw.cw_offsets[:-1] * 4, warp_size=warp,
        transaction_bytes=LOAD_GRANULARITY_BYTES, per_segment=True)
    mat[:, 0] = 2 * load_tx
    mat[:, 1] = 2 * L_arr * 4
    _, store_tx = gather_transactions_segmented(
        cw.mapper, vbytes, cw.cw_offsets, warp_size=warp,
        transaction_bytes=STORE_GRANULARITY_BYTES, per_segment=True)
    mat[:, 2] = store_tx
    mat[:, 3] = L_arr * vbytes
    rows = -(-L_arr // warp)
    mat[:, 4] = L_arr
    mat[:, 5] = rows * warp
    mat[:, 6] = rows * costs.INSTR_WRITEBACK
    return mat


def _stage4_matrix_gs(sh, warp: int, vbytes: int) -> np.ndarray:
    S = sh.num_shards
    wo = sh.window_offsets  # (S, S + 1); W_ij = wo[j, i] : wo[j, i + 1]
    mat = np.zeros((S, len(STAT_FIELDS)), dtype=np.float64)
    # Every shard's write-back also reads the S + 1 window bounds and scans
    # all S windows (the O(S^2)-per-iteration cost CW eliminates).
    bounds_tc = contiguous_transactions(
        S + 1, 8, warp_size=warp, transaction_bytes=LOAD_GRANULARITY_BYTES
    )
    cols_per_chunk = max(1, _WINDOW_CHUNK // S)
    for i0 in range(0, S, cols_per_chunk):
        i1 = min(i0 + cols_per_chunk, S)
        ci = i1 - i0
        starts = wo[:, i0:i1]
        stops = wo[:, i0 + 1:i1 + 1]
        sz = stops - starts  # (S, ci): rows j, columns are shards i0..i1-1
        group = np.broadcast_to(
            np.arange(ci, dtype=np.int64), (S, ci)
        ).ravel()
        load_tx = window_rows_grouped(
            starts.ravel(), stops.ravel(), group, ci, 4, warp_size=warp,
            transaction_bytes=LOAD_GRANULARITY_BYTES)
        store_tx = window_rows_grouped(
            starts.ravel(), stops.ravel(), group, ci, vbytes, warp_size=warp,
            transaction_bytes=STORE_GRANULARITY_BYTES)
        out_edges = sz.sum(axis=0)
        rows = (-(-sz // warp)).sum(axis=0)
        mat[i0:i1, 0] = load_tx + bounds_tc.transactions
        mat[i0:i1, 1] = out_edges * 4 + bounds_tc.bytes_requested
        mat[i0:i1, 2] = store_tx
        mat[i0:i1, 3] = out_edges * vbytes
        mat[i0:i1, 4] = out_edges
        mat[i0:i1, 5] = rows * warp
        mat[i0:i1, 6] = (
            rows * costs.INSTR_WRITEBACK + S * costs.INSTR_GS_WINDOW_SCAN
        )
    return mat


def cusha_static_bundle(
    cw, mode: str, warp: int, vbytes: int, sbytes: int, ebytes: int
) -> CuShaStaticBundle:
    """The whole static-stats setup of ``CuShaEngine`` in vectorized form."""
    sh = cw.shards
    st1, st2, st3 = _stage_base_matrices(sh, warp, vbytes, sbytes, ebytes)
    if mode == "gs":
        stage4 = _stage4_matrix_gs(sh, warp, vbytes)
    else:
        stage4 = _stage4_matrix_cw(cw, warp, vbytes)
    return CuShaStaticBundle(
        base1=stats_from_row(st1.sum(axis=0)),
        base2=stats_from_row(st2.sum(axis=0)),
        base3=stats_from_row(st3.sum(axis=0)),
        stage1=st1,
        stage2=st2,
        stage3=st3,
        stage4=stage4,
        dest_global=sh.dest_index.astype(np.int64),
    )


# ----------------------------------------------------------------------
# Streamed static bundle
# ----------------------------------------------------------------------
@dataclass
class StreamedStaticBundle:
    """Per-chunk static compute stats plus the per-shard write-back stats
    matrix for :class:`~repro.frameworks.streamed.StreamedCuShaEngine`.
    ``shard_static`` keeps the per-shard resolution of ``chunk_static``
    (its rows sum to the chunk rows exactly) so frontier-gated iterations
    can charge only the shards they actually process."""

    chunk_static: np.ndarray  # (num_chunks, len(STAT_FIELDS)) float64
    shard_static: np.ndarray  # (S, len(STAT_FIELDS)) float64
    writeback: np.ndarray  # (S, len(STAT_FIELDS)) float64
    dest_global: np.ndarray  # dest_index as int64 (shared, read-only)


def _shard_static_matrix(
    sh, warp: int, vbytes: int, sbytes: int, ebytes: int
) -> np.ndarray:
    """Per-shard stages-1/2 static stats of the streamed chunk loop."""
    n = sh.num_vertices
    N = sh.vertices_per_shard
    S = sh.num_shards
    lo_arr = np.arange(S, dtype=np.int64) * N
    n_arr = np.minimum(lo_arr + N, n) - lo_arr
    m_arr = np.diff(sh.shard_offsets)
    o_arr = sh.shard_offsets[:-1]
    mat = np.zeros((S, len(STAT_FIELDS)), dtype=np.float64)

    _, tx = contiguous_transactions_segmented(
        n_arr, vbytes, start_bytes=lo_arr * vbytes, warp_size=warp,
        transaction_bytes=LOAD_GRANULARITY_BYTES, per_segment=True)
    mat[:, 0] += tx
    mat[:, 1] += n_arr * vbytes
    for b in filter(None, (vbytes, 4, sbytes, ebytes)):
        _, tx = contiguous_transactions_segmented(
            m_arr, b, start_bytes=o_arr * b, warp_size=warp,
            transaction_bytes=LOAD_GRANULARITY_BYTES, per_segment=True)
        mat[:, 0] += tx
        mat[:, 1] += m_arr * b
    n_rows = -(-n_arr // warp)
    m_rows = -(-m_arr // warp)
    mat[:, 4] = n_arr + m_arr
    mat[:, 5] = (n_rows + m_rows) * warp
    mat[:, 6] = (
        n_rows * costs.INSTR_INIT + m_rows * costs.INSTR_COMPUTE
    )
    return mat


def _writeback_matrix(cw, warp: int, vbytes: int) -> np.ndarray:
    """Per-shard CW write-back stats as priced by the streamed engine
    (one 4-byte contiguous read — not CuSha's two — plus mapper stores)."""
    S = cw.num_shards
    L_arr = np.diff(cw.cw_offsets)
    mat = np.zeros((S, len(STAT_FIELDS)), dtype=np.float64)
    _, load_tx = contiguous_transactions_segmented(
        L_arr, 4, start_bytes=cw.cw_offsets[:-1] * 4, warp_size=warp,
        transaction_bytes=LOAD_GRANULARITY_BYTES, per_segment=True)
    mat[:, 0] = load_tx
    mat[:, 1] = L_arr * 4
    _, store_tx = gather_transactions_segmented(
        cw.mapper, vbytes, cw.cw_offsets, warp_size=warp,
        transaction_bytes=STORE_GRANULARITY_BYTES, per_segment=True)
    mat[:, 2] = store_tx
    mat[:, 3] = L_arr * vbytes
    rows = -(-L_arr // warp)
    mat[:, 4] = L_arr
    mat[:, 5] = rows * warp
    mat[:, 6] = rows * costs.INSTR_WRITEBACK
    return mat


def streamed_static_bundle(
    cw,
    chunks: list[tuple[int, int]],
    warp: int,
    vbytes: int,
    sbytes: int,
    ebytes: int,
) -> StreamedStaticBundle:
    sh = cw.shards
    shard_mat = _shard_static_matrix(sh, warp, vbytes, sbytes, ebytes)
    chunk_static = np.stack(
        [shard_mat[a:b].sum(axis=0) for a, b in chunks]
    ) if chunks else np.zeros((0, len(STAT_FIELDS)))
    return StreamedStaticBundle(
        chunk_static=chunk_static,
        shard_static=shard_mat,
        writeback=_writeback_matrix(cw, warp, vbytes),
        dest_global=sh.dest_index.astype(np.int64),
    )
