"""Virtual Warp-Centric CSR baseline (paper section 2 and Appendix A).

A physical warp of 32 lanes is split into ``32 / virtual_warp_size`` virtual
warps, each owning one vertex per outer step.  The virtual warp's lanes
process the vertex's incoming edges ``virtual_warp_size`` at a time, reduce
the partials with an intra-virtual-warp parallel reduction, and lane 0
conditionally stores the new value.

The hardware accounting materializes the *exact lockstep schedule*: for
every physical-warp step it derives the 32 lanes' edge slots, masks inactive
lanes (tail edges, exhausted sibling virtual warps — the intra-warp
divergence the paper describes), and prices the four access streams
(``SrcIndxs`` reads, ``VertexValues`` gathers — the non-coalesced killer —
``EdgeValues`` reads, static-value gathers).  The schedule is static across
iterations because VWC processes every vertex every iteration, so it is
priced once per ``(graph, program, virtual-warp-size)``.
"""

from __future__ import annotations

import numpy as np

from repro.cache import graph_fingerprint, resolve_cache
from repro.frameworks import costs
from repro.frameworks.base import (ConvergenceError, Engine, IterationTrace,
                                   RunConfig, RunResult)
from repro.frameworks.csrloop import CSRProblem, iterate_chunks, run_chunk
from repro.frameworks.frontier import (ShardFrontier, choose_direction,
                                       resume_dirty, vertex_influence_csr)
from repro.graph.csr import CSR
from repro.graph.digraph import DiGraph
from repro.gpu.engine import KernelCostModel
from repro.gpu.memory import contiguous_transactions, gather_transactions, segments_rowwise
from repro.gpu.pcie import transfer_ms
from repro.gpu.spec import GTX780, GPUSpec, PCIeSpec
from repro.gpu.stats import KernelStats, LOAD_GRANULARITY_BYTES
from repro.gpu.warp import reduction_slots
from repro.placement import multi_device_run
from repro.telemetry.metrics import publish_kernel_stats
from repro.vertexcentric.program import VertexProgram

__all__ = ["VWCEngine", "VIRTUAL_WARP_SIZES"]

VIRTUAL_WARP_SIZES: tuple[int, ...] = (2, 4, 8, 16, 32)
"""The configurations the paper sweeps for VWC-CSR."""

_ROW_CHUNK = 1 << 15


class VWCEngine(Engine):
    """VWC-CSR with a given virtual warp size."""

    def __init__(
        self,
        virtual_warp_size: int = 32,
        *,
        spec: GPUSpec = GTX780,
        pcie: PCIeSpec | None = None,
        chunk_vertices: int | None = None,
        address_dilation: int = 1,
        defer_outliers: bool = False,
        outlier_factor: int = 4,
        cache=None,
    ) -> None:
        if virtual_warp_size not in (1, 2, 4, 8, 16, 32):
            raise ValueError("virtual_warp_size must divide the physical warp")
        if address_dilation < 1:
            raise ValueError("address_dilation must be >= 1")
        self.virtual_warp_size = virtual_warp_size
        # When pricing a 1/k-scale graph, multiplying data-dependent gather
        # indices by k restores the full-size graph's address-space density:
        # a scaled-down vertex array would otherwise fit neighboring sources
        # into the same 32-byte sector far more often than the real dataset
        # does, flattering VWC's non-coalesced gathers.  Structural streams
        # (SrcIndxs, EdgeValues) are contiguous at every scale and are not
        # dilated.
        self.address_dilation = address_dilation
        # The [12] "deferring outliers" variant: vertices whose degree
        # exceeds outlier_factor * virtual_warp_size are pulled out of the
        # virtual-warp pass and processed by full physical warps in a second
        # phase — less intra-warp divergence at the cost of the queueing
        # machinery (priced as extra SISD work per deferred vertex).
        self.defer_outliers = defer_outliers
        self.outlier_factor = outlier_factor
        self.cache = cache
        self.spec = spec
        self.pcie = pcie or PCIeSpec()
        self.cost_model = KernelCostModel(spec)
        # Vertices concurrently in flight: the resident virtual warps.  This
        # is the chunk at which in-place updates become visible (chunked
        # Gauss-Seidel), mirroring the true kernel's single-version storage.
        if chunk_vertices is None:
            resident = (
                spec.num_sms * spec.max_threads_per_sm // virtual_warp_size
            )
            chunk_vertices = max(8192, resident)
        self.chunk_vertices = chunk_vertices
        self.name = f"vwc-{virtual_warp_size}"
        if defer_outliers:
            self.name += "-deferred"

    # ------------------------------------------------------------------
    # Static schedule pricing
    # ------------------------------------------------------------------
    def _static_stats(self, problem: CSRProblem) -> KernelStats:
        """Aggregate of :meth:`_static_stat_phases` (kept for tests)."""
        total = KernelStats()
        for s in self._static_stat_phases(problem).values():
            total += s
        return total

    def _static_stat_phases(
        self, problem: CSRProblem, lo: int = 0, hi: int | None = None
    ) -> dict[str, KernelStats]:
        """Price the lockstep schedule for vertices ``[lo, hi)`` (defaults to
        the whole graph).  A range restriction prices a frontier-gated chunk:
        when ``lo`` is a multiple of ``warp / virtual_warp_size`` the chunk's
        physical-warp rows are the same rows a full sweep would form, so the
        per-chunk phases sum exactly to the full-sweep phases."""
        spec = self.spec
        warp = spec.warp_size
        vw = self.virtual_warp_size
        vpw = warp // vw
        prog = problem.program
        vbytes = prog.vertex_value_bytes
        sbytes = prog.static_value_bytes
        ebytes = prog.edge_value_bytes
        csr = problem.csr
        if hi is None:
            hi = csr.num_vertices
        n = hi - lo
        deg = np.diff(csr.in_edge_idxs[lo:hi + 1])
        offs = csr.in_edge_idxs[lo:hi]

        sisd = KernelStats()
        edges = KernelStats()
        reduction = KernelStats()

        # --- SISD prologue/epilogue (Fig. 14 lines 10-15): lane 0 of each
        # virtual warp reads InEdgeIdxs[v], InEdgeIdxs[v+1], VertexValues[v].
        # The vpw active lanes of a physical warp touch consecutive vertices,
        # so grouping rows by vpw consecutive elements prices it exactly.
        sector = LOAD_GRANULARITY_BYTES
        sisd.add_load(contiguous_transactions(n, 4, start_byte=lo * 4,
                                              warp_size=vpw,
                                              transaction_bytes=sector))
        sisd.add_load(contiguous_transactions(n, 4, start_byte=lo * 4,
                                              warp_size=vpw,
                                              transaction_bytes=sector))
        sisd.add_load(contiguous_transactions(n, vbytes, start_byte=lo * vbytes,
                                              warp_size=vpw,
                                              transaction_bytes=sector))
        num_warps = -(-n // vpw)
        sisd.add_lanes(n, num_warps * warp,
                       instructions_per_row=costs.INSTR_VWC_SISD)

        # --- Edge loop(s).
        if self.defer_outliers:
            threshold = self.outlier_factor * vw
            outlier = deg > threshold
            deg_regular = np.where(outlier, 0, deg)
            self._edge_loop_stats(edges, deg_regular, offs, csr, vw,
                                  vbytes, sbytes, ebytes)
            # Deferred phase: outliers get one full physical warp each
            # (vw = warp), plus queueing overhead per deferred vertex.
            deg_outlier = np.where(outlier, deg, 0)
            if outlier.any():
                self._edge_loop_stats(edges, deg_outlier, offs, csr, warp,
                                      vbytes, sbytes, ebytes)
                n_out = int(outlier.sum())
                sisd.add_instructions(n_out * costs.INSTR_VWC_SISD)
                reduction.add_lanes(
                    *reduction_slots(deg_outlier, warp, warp),
                    instructions_per_row=costs.INSTR_VWC_REDUCE)
            active_r, total_r = reduction_slots(deg_regular, vw, warp)
        else:
            self._edge_loop_stats(edges, deg, offs, csr, vw,
                                  vbytes, sbytes, ebytes)
            active_r, total_r = reduction_slots(deg, vw, warp)

        # --- Intra-virtual-warp parallel reduction (shared memory only).
        reduction.add_lanes(active_r, total_r,
                            instructions_per_row=costs.INSTR_VWC_REDUCE)
        return {"sisd": sisd, "edge-loop": edges, "reduction": reduction}

    def _edge_loop_stats(
        self,
        stats: KernelStats,
        deg: np.ndarray,
        offs: np.ndarray,
        csr,
        vw: int,
        vbytes: int,
        sbytes: int,
        ebytes: int,
    ) -> None:
        """Price the lockstep neighbor loop for a (possibly masked) degree
        vector at virtual warp size ``vw`` (chunked over physical warps)."""
        warp = self.spec.warp_size
        vpw = warp // vw
        n = deg.size
        num_warps = -(-n // vpw)
        degp = np.zeros(num_warps * vpw, dtype=np.int64)
        degp[:n] = deg
        offp = np.zeros(num_warps * vpw, dtype=np.int64)
        offp[:n] = offs
        deg_mat = degp.reshape(num_warps, vpw)
        off_mat = offp.reshape(num_warps, vpw)
        steps = (-(-deg_mat // vw)).max(axis=1)  # physical-warp steps

        lane = np.arange(warp, dtype=np.int64)
        lane_vwarp = lane // vw
        lane_rank = lane % vw
        src = csr.src_indxs
        tx = LOAD_GRANULARITY_BYTES

        pos_in = np.cumsum(steps) - steps  # row offset of each warp
        total_rows = int(steps.sum())
        row_warp = np.repeat(np.arange(num_warps), steps)
        row_k = np.arange(total_rows, dtype=np.int64) - np.repeat(pos_in, steps)
        # Loop invariants: each warp's per-lane degree/offset rows, broadcast
        # to lane positions once instead of re-gathered per chunk.
        deg_lane = deg_mat[:, lane_vwarp]
        off_lane = off_mat[:, lane_vwarp]

        for start in range(0, total_rows, _ROW_CHUNK):
            stop = min(start + _ROW_CHUNK, total_rows)
            wm = row_warp[start:stop]
            k = row_k[start:stop, None]
            d = deg_lane[wm]
            o = off_lane[wm]
            r = k * vw + lane_rank[None, :]
            active = r < d
            pos = np.where(active, o + r, 0)
            rows = pos.shape[0]
            n_active = int(active.sum())
            # SrcIndxs reads (4-byte indices, mostly-contiguous per vertex).
            stats.add_load_raw(
                segments_rowwise(pos * 4 // tx, active), n_active * 4
            )
            # VertexValues gathers through SrcIndxs — the non-coalesced cost.
            gsrc = src[pos].astype(np.int64) * self.address_dilation
            stats.add_load_raw(
                segments_rowwise(gsrc * vbytes // tx, active),
                n_active * vbytes,
            )
            if sbytes:
                stats.add_load_raw(
                    segments_rowwise(gsrc * sbytes // tx, active),
                    n_active * sbytes,
                )
            if ebytes:
                stats.add_load_raw(
                    segments_rowwise(pos * ebytes // tx, active),
                    n_active * ebytes,
                )
            stats.add_lanes(n_active, rows * warp,
                            instructions_per_row=costs.INSTR_VWC_EDGE)

    def _chunk_static_phases(
        self, problem: CSRProblem, chunk_size: int
    ) -> list[dict[str, KernelStats]]:
        """Per-chunk lockstep pricing for frontier-gated iterations: element
        ``c`` prices the three static phases of vertices
        ``[c * chunk_size, (c + 1) * chunk_size)`` alone."""
        n = problem.csr.num_vertices
        return [
            self._static_stat_phases(problem, a, min(a + chunk_size, n))
            for a in range(0, n, chunk_size)
        ]

    # ------------------------------------------------------------------
    def preflight_representations(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig
    ) -> tuple:
        """The CSR this run iterates, via the same cache key ``_run`` uses."""
        cache_opt = False if config.exec_path == "reference" else self.cache
        cache = resolve_cache(cache_opt)
        if cache is not None:
            csr = cache.get(
                ("csr", graph_fingerprint(graph)),
                lambda: CSR.from_graph(graph),
            )
        else:
            csr = CSR.from_graph(graph)
        return (csr,)

    def predicted_stage_stats(
        self, graph: DiGraph, program: VertexProgram
    ) -> dict[str, KernelStats]:
        """The static lockstep-schedule phases (``sisd``, ``edge-loop``,
        ``reduction``) one iteration re-emits verbatim; the conditional
        ``stores`` phase is dynamic and deliberately absent."""
        problem = CSRProblem.build(graph, program, cache=self.cache)
        return self._static_stat_phases(problem)

    # ------------------------------------------------------------------
    def _run(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig
    ) -> RunResult:
        tracer = config.tracer
        with tracer.span(
            self.name,
            "run",
            engine=self.name,
            program=program.name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        ) as run_span:
            return self._execute(graph, program, config, run_span)

    def _execute(
        self, graph: DiGraph, program: VertexProgram, config: RunConfig, run_span
    ) -> RunResult:
        max_iterations = config.max_iterations
        tracer = config.tracer
        trace_on = tracer.enabled
        vbytes_ = program.vertex_value_bytes
        sbytes_ = program.static_value_bytes
        ebytes_ = program.edge_value_bytes
        # The reference execution path never consults the cache, keeping the
        # equivalence baseline free of memoization.
        cache_opt = False if config.exec_path == "reference" else self.cache
        cache = resolve_cache(cache_opt)
        cache_hits = cache_misses = 0
        if cache is not None:
            hits0, misses0 = cache.counters()
        problem = CSRProblem.build(graph, program, cache=cache_opt)
        if cache is not None:
            # The lockstep schedule is static per (graph structure, virtual
            # warp config, value layout): cache the priced phases.
            fp = graph_fingerprint(graph)
            phases = cache.get(
                ("vwc-stats", fp, self.virtual_warp_size,
                 self.address_dilation, self.defer_outliers,
                 self.outlier_factor, self.spec.warp_size,
                 vbytes_, sbytes_, ebytes_),
                lambda: self._static_stat_phases(problem),
            )
            hits1, misses1 = cache.counters()
            cache_hits, cache_misses = hits1 - hits0, misses1 - misses0
            if trace_on:
                tracer.metrics.counter("cache.hits").inc(cache_hits)
                tracer.metrics.counter("cache.misses").inc(cache_misses)
        else:
            phases = self._static_stat_phases(problem)
        static_stats = KernelStats()
        for s in phases.values():
            static_stats += s
        vbytes = program.vertex_value_bytes
        ebytes = program.edge_value_bytes
        sbytes = program.static_value_bytes
        vpw = self.spec.warp_size // self.virtual_warp_size
        n = graph.num_vertices

        if config.resume_values is not None:
            # CSRProblem.build initialized fresh values; warm-start from the
            # checkpoint instead (copied — snapshots are frozen).
            problem.vertex_values = np.array(config.resume_values, copy=True)

        # ----- frontier state ------------------------------------------------
        # The scheduling unit is the Gauss-Seidel vertex chunk: updates land
        # live at each chunk's end, so marks flush immediately
        # (flush_pos == chunk index).
        chunk_size = self.chunk_vertices
        num_chunks = -(-n // chunk_size)
        chunk_bounds = np.minimum(
            np.arange(num_chunks + 1, dtype=np.int64) * chunk_size, n
        )
        mdr = multi_device_run(
            config, num_chunks,
            weights=np.diff(problem.csr.in_edge_idxs[chunk_bounds]),
            src_unit=graph.src // chunk_size,
            dst_unit=graph.dst // chunk_size,
            value_bytes=vbytes,
            pcie=self.pcie,
        )
        frontier_on = config.frontier != "off"
        frontier = None
        last_mask = None
        chunk_phase_list = None
        chunk_flush_pos = None
        chunk_edge_counts = None
        total_in_edges = int(problem.csr.in_edge_idxs[-1])
        if frontier_on:
            if cache is not None:
                fp2 = graph_fingerprint(graph)
                infl = cache.get(
                    ("frontier", fp2, chunk_size),
                    lambda: vertex_influence_csr(
                        graph.src, graph.dst, n, chunk_size, num_chunks
                    ),
                )
                chunk_phase_list = cache.get(
                    ("vwc-chunk-stats", fp2, self.virtual_warp_size,
                     self.address_dilation, self.defer_outliers,
                     self.outlier_factor, self.spec.warp_size,
                     vbytes_, sbytes_, ebytes_, chunk_size),
                    lambda: self._chunk_static_phases(problem, chunk_size),
                )
            else:
                infl = vertex_influence_csr(
                    graph.src, graph.dst, n, chunk_size, num_chunks
                )
                chunk_phase_list = self._chunk_static_phases(
                    problem, chunk_size
                )
            chunk_flush_pos = np.arange(num_chunks, dtype=np.int64)
            frontier = ShardFrontier(
                num_chunks, chunk_size, infl[0], infl[1],
                resume=config.resume_frontier,
                flush_pos=chunk_flush_pos,
            )
            last_mask = np.zeros(n, dtype=bool)
            bounds = np.minimum(
                np.arange(num_chunks + 1, dtype=np.int64) * chunk_size, n
            )
            chunk_edge_counts = np.diff(problem.csr.in_edge_idxs[bounds])
            phase_totals = {name: KernelStats() for name in phases}

        rep_bytes = problem.csr.memory_bytes(vbytes, ebytes, sbytes)
        h2d_ms = transfer_ms(rep_bytes, self.pcie)
        d2h_ms = transfer_ms(n * vbytes, self.pcie)
        faults = config.faults
        if faults.active:
            faults.launch(self.name, 0, 0)
            faults.transfer(self.name, "h2d")
        tracer.emit(
            "h2d", "transfer", model_start_ms=0.0, model_ms=h2d_ms,
            bytes=rep_bytes,
        )
        if trace_on:
            # Standalone per-phase modeled cost of the static schedule
            # (kernel_launches=0, so no launch overhead) — reused every
            # iteration's stage spans since the schedule is static.
            phase_ms = {
                name: self.cost_model.time_ms(s, occupancy=1.0)
                for name, s in phases.items()
            }

        total_stats = KernelStats()
        store_dynamic = KernelStats()
        traces: list[IterationTrace] = []
        kernel_ms = 0.0
        converged = False
        iterations = config.start_iteration
        upd_mask = np.zeros(n, dtype=bool)

        for iteration in range(config.start_iteration + 1, max_iterations + 1):
            if faults.active:
                faults.kernel(self.name, iteration, config.exec_path)
                if mdr is not None:
                    faults.device(
                        self.name, iteration, config.exec_path, mdr.placement
                    )
            iter_start_ms = h2d_ms + kernel_ms
            with tracer.span(
                f"iter-{iteration}", "iteration", model_start_ms=iter_start_ms
            ) as it_span:
                push = False
                direction = None
                active_chunk_count = 0
                if frontier_on:
                    program.begin_iteration(iteration)
                    if config.frontier == "auto":
                        direction = choose_direction(
                            int(chunk_edge_counts[frontier.dirty].sum()),
                            total_in_edges,
                        )
                    else:
                        direction = "push"
                    push = direction == "push"
                    last_mask[:] = False
                if push:
                    # Frontier-gated Gauss-Seidel: only dirty chunks run.
                    # Marks land immediately after each chunk (its updates
                    # are live), so a mark into a later chunk schedules it
                    # within this very iteration — exactly the full sweep's
                    # visibility — while marks into earlier chunks survive
                    # to the next iteration.
                    iter_phases = {name: KernelStats() for name in phases}
                    updated_parts: list[np.ndarray] = []
                    mdr_processed: list[int] = []
                    for c in range(num_chunks):
                        if not frontier.dirty[c]:
                            frontier.shards_skipped += 1
                            continue
                        frontier.dirty[c] = False
                        frontier.edges_processed += int(chunk_edge_counts[c])
                        active_chunk_count += 1
                        if mdr is not None:
                            mdr_processed.append(c)
                        a = c * chunk_size
                        idx, _ops = run_chunk(
                            problem, a, min(a + chunk_size, n)
                        )
                        for pname, pstats in chunk_phase_list[c].items():
                            iter_phases[pname] += pstats
                        if idx.size:
                            updated_parts.append(idx)
                            last_mask[idx] = True
                            frontier.mark(idx)
                    if updated_parts:
                        updated_idx = np.concatenate(updated_parts)
                    else:
                        updated_idx = np.empty(0, dtype=np.int64)
                    iter_stats = KernelStats()
                    for pstats in iter_phases.values():
                        iter_stats += pstats
                    iter_stats.kernel_launches = 1 if active_chunk_count else 0
                    if mdr is not None:
                        mdr.note_processed(
                            np.asarray(mdr_processed, dtype=np.int64)
                        )
                else:
                    updated_idx, _ops = iterate_chunks(
                        problem,
                        self.chunk_vertices,
                        metrics=tracer.metrics if trace_on else None,
                    )
                    iter_stats = static_stats.copy()
                    iter_stats.kernel_launches = 1
                    if frontier_on:  # pull: dense sweep over every chunk
                        iter_phases = phases
                        active_chunk_count = num_chunks
                        frontier.edges_processed += total_in_edges
                        last_mask[updated_idx] = True
                        # The exact end-of-iteration bitmap a gated sweep
                        # would leave behind (live marks minus the clears of
                        # later-processed chunks).
                        frontier.dirty = resume_dirty(
                            last_mask, chunk_size, num_chunks,
                            frontier.indptr, frontier.targets,
                            chunk_flush_pos,
                        )
                if frontier_on:
                    for pname, pstats in iter_phases.items():
                        phase_totals[pname] += pstats
                if mdr is not None and updated_idx.size:
                    mdr.note_updated(np.unique(updated_idx // chunk_size))
                if trace_on:
                    stores_iter = KernelStats()
                if updated_idx.size:
                    # Lane-0 conditional stores: group vertices by physical warp
                    # (vpw consecutive vertices per warp row).
                    upd_mask[:] = False
                    upd_mask[updated_idx] = True
                    store_tc = gather_transactions(
                        np.arange(n, dtype=np.int64),
                        vbytes,
                        active=upd_mask,
                        warp_size=vpw,
                    )
                    iter_stats.add_store(store_tc)
                    store_dynamic.add_store(store_tc)
                    if trace_on:
                        stores_iter.add_store(store_tc)
                t_ms = self.cost_model.time_ms(iter_stats, occupancy=1.0)
                if mdr is not None:
                    t_ms = mdr.iteration_time(t_ms)
                    if trace_on and mdr.last_exchange_bytes:
                        tracer.emit(
                            "exchange", "transfer",
                            model_start_ms=iter_start_ms + t_ms
                            - mdr.last_exchange_ms,
                            model_ms=mdr.last_exchange_ms,
                            bytes=mdr.last_exchange_bytes,
                            iteration=iteration,
                        )
                kernel_ms += t_ms
                total_stats += iter_stats
                iterations = iteration
                if config.collect_traces:
                    traces.append(
                        IterationTrace(
                            iteration, int(updated_idx.size), t_ms, kernel_ms,
                            active_chunk_count,
                        )
                    )
                if trace_on:
                    it_span.model_ms = t_ms
                    it_span.attrs["updated_vertices"] = int(updated_idx.size)
                    if frontier_on:
                        it_span.attrs["frontier_direction"] = direction
                        it_span.attrs["active_shards"] = active_chunk_count
                    tracer.metrics.histogram(
                        "engine.updated_vertices"
                    ).observe(int(updated_idx.size))
                    emit_phases = iter_phases if frontier_on else phases
                    for pname, pstats in emit_phases.items():
                        tracer.emit(
                            pname,
                            "stage",
                            model_start_ms=iter_start_ms,
                            model_ms=(
                                self.cost_model.time_ms(pstats, occupancy=1.0)
                                if frontier_on else phase_ms[pname]
                            ),
                            stats=pstats,
                            iteration=iteration,
                        )
                    tracer.emit(
                        "stores",
                        "stage",
                        model_start_ms=iter_start_ms,
                        model_ms=self.cost_model.time_ms(
                            stores_iter, occupancy=1.0
                        ),
                        stats=stores_iter,
                        iteration=iteration,
                    )
            if faults.active:
                faults.values(self.name, iteration, problem.vertex_values)
            if updated_idx.size == 0:
                converged = True
                break

        if not converged and not config.allow_partial:
            raise ConvergenceError(
                f"{self.name}/{program.name} did not converge in "
                f"{max_iterations} iterations"
            )
        if faults.active:
            faults.transfer(self.name, "d2h")
        tracer.emit(
            "d2h", "transfer", model_start_ms=h2d_ms + kernel_ms,
            model_ms=d2h_ms, bytes=n * vbytes,
        )
        if trace_on:
            m = tracer.metrics
            publish_kernel_stats(m, total_stats)
            m.counter("engine.iterations").inc(
                iterations - config.start_iteration
            )
            m.gauge("vwc.virtual_warp_size").set(self.virtual_warp_size)
            m.gauge("vwc.chunk_vertices").set(self.chunk_vertices)
            if mdr is not None:
                mdr.publish(tracer, engine=self.name)
            if frontier_on:
                m.counter("frontier.edges_processed").inc(
                    frontier.edges_processed
                )
                m.counter("frontier.shards_skipped").inc(
                    frontier.shards_skipped
                )
            run_span.model_ms = h2d_ms + kernel_ms + d2h_ms
            run_span.attrs["iterations"] = iterations
            run_span.attrs["converged"] = converged
            if frontier_on:
                run_span.attrs["frontier"] = config.frontier

        def scaled(s: KernelStats, k: int) -> KernelStats:
            out = KernelStats()
            out.load_transactions = s.load_transactions * k
            out.load_bytes_requested = s.load_bytes_requested * k
            out.store_transactions = s.store_transactions * k
            out.store_bytes_requested = s.store_bytes_requested * k
            out.active_lane_slots = s.active_lane_slots * k
            out.total_lane_slots = s.total_lane_slots * k
            out.warp_instructions = s.warp_instructions * k
            return out

        if frontier_on:
            stage_stats = dict(phase_totals)
        else:
            stage_stats = {
                name: scaled(s, iterations - config.start_iteration)
                for name, s in phases.items()
            }
        stage_stats["stores"] = store_dynamic
        return RunResult(
            engine=self.name,
            program=program.name,
            values=problem.vertex_values,
            iterations=iterations,
            converged=converged,
            kernel_time_ms=kernel_ms,
            h2d_ms=h2d_ms,
            d2h_ms=d2h_ms,
            representation_bytes=rep_bytes,
            stats=total_stats,
            traces=traces,
            num_edges=graph.num_edges,
            stage_stats=stage_stats,
            exec_path=config.exec_path,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            edges_processed=0 if frontier is None else frontier.edges_processed,
            shards_skipped=0 if frontier is None else frontier.shards_skipped,
            frontier_mask=None if last_mask is None else last_mask.copy(),
            devices=config.devices,
            exchange_bytes=0 if mdr is None else mdr.exchange_bytes,
            exchange_ms=0.0 if mdr is None else mdr.exchange_ms,
        )
