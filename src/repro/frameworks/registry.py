"""Registry-backed engine factory: ``make_engine(key, **opts)``.

One place maps engine keys to constructors, replacing the hand-rolled
factories that ``cli.py`` and ``harness/runner.py`` each grew.  Keys:

======================  ====================================================
``cusha-gs``            CuSha over G-Shards
``cusha-cw``            CuSha over Concatenated Windows
``cusha-streamed``      out-of-core CuSha (alias: ``streamed``)
``vwc-<N>``             Virtual Warp-Centric CSR, virtual warp size N
``mtcpu`` / ``mtcpu-T`` multithreaded CPU CSR (default 12 threads)
``scalar``              the loop-based oracle
``csrloop``             single-threaded CSR loop (``mtcpu`` at 1 thread)
======================  ====================================================

Options contract
----------------
``make_engine`` accepts a *shared* option vocabulary and each engine family
picks out what it understands; unknown or inapplicable options are
**silently ignored**, so one call site (e.g. the grid runner) can pass
``gpu_spec=...`` to every key without branching on family.  Because GPU and
CPU engines both call their hardware model ``spec``, the factory vocabulary
disambiguates: ``gpu_spec`` reaches the GPU engines, ``cpu_spec`` reaches
the CPU engine, and plain ``spec`` reaches whichever family the key selects.

Recognized options: ``shard_size`` (a.k.a. ``vertices_per_shard``),
``gpu_spec``, ``cpu_spec``, ``spec``, ``pcie``, ``sync_mode``,
``threads_per_block``, ``resident_blocks``, ``always_writeback``,
``address_dilation``, ``chunk_vertices``, ``defer_outliers``,
``outlier_factor``, ``device_memory_bytes``, ``threads``, ``cache``
(representation-cache selection, see :mod:`repro.cache`: ``None`` =
process-wide default, ``False`` = disabled, or an explicit
``RepresentationCache``).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import EngineKeyError
from repro.frameworks.base import Engine
from repro.frameworks.cusha import CuShaEngine
from repro.frameworks.mtcpu import MTCPU_THREAD_COUNTS, MTCPUEngine
from repro.frameworks.scalar import ScalarReferenceEngine
from repro.frameworks.streamed import StreamedCuShaEngine
from repro.frameworks.vwc import VIRTUAL_WARP_SIZES, VWCEngine

__all__ = ["make_engine", "engine_keys", "register_engine", "EngineKeyError"]


def _pick(opts: dict, *names, default=None):
    for n in names:
        if n in opts and opts[n] is not None:
            return opts[n]
    return default


def _build_cusha(key: str, opts: dict) -> Engine:
    mode = key.split("-", 1)[1]
    kwargs = {}
    shard = _pick(opts, "shard_size", "vertices_per_shard")
    if shard is not None:
        kwargs["vertices_per_shard"] = shard
    spec = _pick(opts, "gpu_spec", "spec")
    if spec is not None:
        kwargs["spec"] = spec
    for name in ("pcie", "sync_mode", "threads_per_block", "resident_blocks",
                 "always_writeback", "cache"):
        if opts.get(name) is not None:
            kwargs[name] = opts[name]
    return CuShaEngine(mode, **kwargs)


def _build_streamed(key: str, opts: dict) -> Engine:
    kwargs = {}
    shard = _pick(opts, "shard_size", "vertices_per_shard")
    if shard is not None:
        kwargs["vertices_per_shard"] = shard
    spec = _pick(opts, "gpu_spec", "spec")
    if spec is not None:
        kwargs["spec"] = spec
    for name in ("pcie", "device_memory_bytes", "cache"):
        if opts.get(name) is not None:
            kwargs[name] = opts[name]
    return StreamedCuShaEngine(**kwargs)


def _build_vwc(key: str, opts: dict) -> Engine:
    try:
        w = int(key.split("-", 1)[1])
    except (IndexError, ValueError):
        raise EngineKeyError(
            f"{key!r}: expected vwc-<N> with N in {VIRTUAL_WARP_SIZES}"
        ) from None
    kwargs = {}
    spec = _pick(opts, "gpu_spec", "spec")
    if spec is not None:
        kwargs["spec"] = spec
    for name in ("pcie", "address_dilation", "chunk_vertices",
                 "defer_outliers", "outlier_factor", "cache"):
        if opts.get(name) is not None:
            kwargs[name] = opts[name]
    return VWCEngine(w, **kwargs)


def _build_mtcpu(key: str, opts: dict) -> Engine:
    parts = key.split("-", 1)
    if len(parts) == 2:
        try:
            threads = int(parts[1])
        except ValueError:
            raise EngineKeyError(
                f"{key!r}: expected mtcpu or mtcpu-<threads>"
            ) from None
    else:
        threads = _pick(opts, "threads", default=12)
    kwargs = {}
    spec = _pick(opts, "cpu_spec", "spec")
    if spec is not None:
        kwargs["spec"] = spec
    if opts.get("cache") is not None:
        kwargs["cache"] = opts["cache"]
    return MTCPUEngine(threads, **kwargs)


def _build_csrloop(key: str, opts: dict) -> Engine:
    kwargs = {}
    spec = _pick(opts, "cpu_spec", "spec")
    if spec is not None:
        kwargs["spec"] = spec
    if opts.get("cache") is not None:
        kwargs["cache"] = opts["cache"]
    engine = MTCPUEngine(1, **kwargs)
    engine.name = "csrloop"
    return engine


def _build_scalar(key: str, opts: dict) -> Engine:
    shard = _pick(opts, "shard_size", "vertices_per_shard", default=4)
    return ScalarReferenceEngine(vertices_per_shard=shard)


_EXACT: dict[str, Callable[[str, dict], Engine]] = {
    "cusha-gs": _build_cusha,
    "cusha-cw": _build_cusha,
    "cusha-streamed": _build_streamed,
    "streamed": _build_streamed,
    "mtcpu": _build_mtcpu,
    "scalar": _build_scalar,
    "csrloop": _build_csrloop,
}
_PREFIX: dict[str, Callable[[str, dict], Engine]] = {
    "vwc-": _build_vwc,
    "mtcpu-": _build_mtcpu,
}


def register_engine(
    key: str, builder: Callable[[str, dict], Engine], *, prefix: bool = False
) -> None:
    """Register a builder for an exact ``key`` (or a ``key`` prefix).

    The builder is called as ``builder(full_key, opts_dict)`` and must
    return an :class:`~repro.frameworks.base.Engine`.
    """
    (_PREFIX if prefix else _EXACT)[key] = builder


def engine_keys() -> list[str]:
    """Canonical concrete keys (parameterized families enumerated)."""
    keys = ["cusha-gs", "cusha-cw", "cusha-streamed"]
    keys += [f"vwc-{w}" for w in VIRTUAL_WARP_SIZES]
    keys += ["mtcpu"] + [f"mtcpu-{t}" for t in MTCPU_THREAD_COUNTS]
    keys += ["scalar", "csrloop"]
    return keys


def make_engine(key: str, **opts) -> Engine:
    """Build the engine named by ``key`` (see module docstring for the
    key table and the shared options contract)."""
    builder = _EXACT.get(key)
    if builder is None:
        for prefix, b in _PREFIX.items():
            if key.startswith(prefix):
                builder = b
                break
    if builder is None:
        raise EngineKeyError(
            f"unknown engine key {key!r}; expected one of {engine_keys()}"
        )
    return builder(key, opts)
