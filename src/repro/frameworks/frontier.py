"""Frontier-centric execution: dirty bitmaps, influence maps, direction.

Every engine historically swept all shards every iteration even when only
a handful of vertices changed.  ``RunConfig(frontier=...)`` turns on
work-efficient sweeps built from three pieces that live here:

**Dirty bitmap** (:class:`ShardFrontier`).  One boolean per scheduling
unit — a G-Shards/CW shard for the CuSha engines, a vertex chunk for VWC.
A unit's bit is cleared when the unit is processed and set again when
something it depends on changes.  Processing a *clean* unit is a
deterministic no-op (its inputs are bit-identical to the last time it ran,
so ``apply`` reports no updates), which is the whole correctness argument:
skipping clean units changes **nothing** about values, traces, update
counts, or iteration counts — only the modeled (and wall-clock) work.

**Influence map** (:func:`vertex_influence_csr`).  A vertex ``u`` can
invalidate unit ``t`` only if ``u`` has an out-edge whose destination
lives in ``t`` — exactly the shard→dest-window mapping, deduplicated to a
``vertex → units`` CSR.  Engines mark from the *genuinely updated* vertex
indices at their write-back boundaries (that is when other units can first
observe the new value), plus the updater's own unit immediately (a unit
reads its own destination values live).  ``always_writeback`` runs mark
from the same updated set — writing back an unchanged value invalidates
nobody.

**Direction choice** (:func:`choose_direction`).  Gunrock/Beamer-style
push/pull switching for ``frontier="auto"``: when the frontier touches
more than ``1/alpha`` of the edges, a dense full sweep (CuSha's native
gather form — "pull") is cheaper than assembling the sparse gather
("push"); below the threshold push wins by orders of magnitude.  Both
directions are bit-exact, so the per-iteration switch is free to be a pure
heuristic.

**Resume** (:func:`resume_dirty`).  The dirty set left at the end of an
iteration is a pure function of that iteration's updated-vertex mask plus
static schedule data: a mark from ``u`` (unit ``s``, flushed at position
``flush_pos[s]``) into unit ``t`` survives the iteration iff ``t`` was
already processed when the mark landed — ``flush_pos[t] <= flush_pos[s]``
— otherwise ``t``'s own later processing cleared it (and ``t``'s own
updates, also in the mask, re-mark whatever is still live).  Checkpoints
therefore store just the ``(n,)`` updated-vertex mask
(:attr:`RunResult.frontier_mask`) and segmented runs rebuild the exact
bitmap a continuous run would hold.
"""

from __future__ import annotations

import numpy as np

from repro.frameworks.wavebatch import multi_arange

__all__ = [
    "FRONTIER_MODES",
    "DIRECTION_ALPHA",
    "vertex_influence_csr",
    "resume_dirty",
    "choose_direction",
    "ShardFrontier",
]

FRONTIER_MODES = ("off", "sparse", "auto")

#: Beamer's direction-switching constant: pull (dense sweep) once the
#: frontier's out-edges exceed ``total_edges / DIRECTION_ALPHA``.
DIRECTION_ALPHA = 14.0


def vertex_influence_csr(
    sources: np.ndarray,
    destinations: np.ndarray,
    num_vertices: int,
    unit_size: int,
    num_units: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated ``vertex -> scheduling units it can invalidate`` CSR.

    ``(indptr, targets)`` with ``targets[indptr[u]:indptr[u+1]]`` the
    sorted unique units holding a destination of one of ``u``'s out-edges.
    Unit membership is by uniform ranges (``vertex // unit_size``), which
    matches G-Shards/CW shards, streamed shards, and VWC chunks alike.
    """
    src = np.asarray(sources, dtype=np.int64)
    dst_unit = np.asarray(destinations, dtype=np.int64) // unit_size
    pairs = np.unique(src * num_units + dst_unit)
    u = pairs // num_units
    targets = (pairs % num_units).astype(np.int64)
    counts = np.bincount(u, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, targets


def choose_direction(
    active_edges: int, total_edges: int, alpha: float = DIRECTION_ALPHA
) -> str:
    """``"pull"`` (dense sweep) or ``"push"`` (sparse gather) this iteration.

    ``active_edges`` is the number of shard entries the sparse gather
    would process (the frontier size × its average degree, exactly).
    """
    return "pull" if active_edges * alpha >= total_edges else "push"


def resume_dirty(
    mask: np.ndarray,
    unit_size: int,
    num_units: int,
    indptr: np.ndarray,
    targets: np.ndarray,
    flush_pos: np.ndarray,
) -> np.ndarray:
    """Rebuild the end-of-iteration dirty bitmap from an updated-vertex mask.

    ``flush_pos[t]`` is the position in the processing order at which unit
    ``t``'s marks are flushed: ``shard // wave_size`` for wave-synchronous
    CuSha, the unit index itself for async CuSha and VWC chunks, and all
    zeros for BSP/streamed (one flush at iteration end, every mark
    survives).  See the module docstring for the survival rule.
    """
    dirty = np.zeros(num_units, dtype=bool)
    upd = np.flatnonzero(np.asarray(mask, dtype=bool)).astype(np.int64)
    if not upd.size:
        return dirty
    src_unit = upd // unit_size
    dirty[src_unit] = True
    lo, hi = indptr[upd], indptr[upd + 1]
    edges = multi_arange(lo, hi)
    tgt = targets[edges]
    src_pos = np.repeat(flush_pos[src_unit], hi - lo)
    dirty[tgt[flush_pos[tgt] <= src_pos]] = True
    return dirty


class ShardFrontier:
    """Live dirty bitmap + work counters for one frontier-gated run.

    Engines call :meth:`active` to pick the units to process, :meth:`clear`
    on the processed units, and :meth:`mark` with the genuinely updated
    vertex indices at each write-back flush (self-units are marked here
    too — the call sites coincide for every engine's flush discipline, see
    the module docstring).
    """

    __slots__ = (
        "dirty",
        "unit_size",
        "indptr",
        "targets",
        "edges_processed",
        "shards_skipped",
    )

    def __init__(
        self,
        num_units: int,
        unit_size: int,
        indptr: np.ndarray,
        targets: np.ndarray,
        resume: np.ndarray | None = None,
        flush_pos: np.ndarray | None = None,
    ) -> None:
        if resume is None:
            # A fresh run: everything is dirty (the first sweep is full).
            self.dirty = np.ones(num_units, dtype=bool)
        else:
            assert flush_pos is not None
            self.dirty = resume_dirty(
                resume, unit_size, num_units, indptr, targets, flush_pos
            )
        self.unit_size = unit_size
        self.indptr = indptr
        self.targets = targets
        self.edges_processed = 0
        self.shards_skipped = 0

    def active(self, lo: int, hi: int) -> np.ndarray:
        """Absolute indices of dirty units within ``[lo, hi)``."""
        return lo + np.flatnonzero(self.dirty[lo:hi])

    def clear(self, units: np.ndarray) -> None:
        self.dirty[units] = False

    def mark(self, updated_vertices: np.ndarray) -> None:
        """Mark the updaters' own units and every unit they influence."""
        upd = np.asarray(updated_vertices, dtype=np.int64)
        if not upd.size:
            return
        self.dirty[upd // self.unit_size] = True
        edges = multi_arange(self.indptr[upd], self.indptr[upd + 1])
        self.dirty[self.targets[edges]] = True
