"""Independent golden answers for the eight benchmarks.

None of these share code with the engines: BFS is a frontier sweep over the
*edge list*, SSSP/CC go through :mod:`scipy.sparse.csgraph`, SSWP is a
textbook max-min Dijkstra on a heap, PageRank and Circuit Simulation are
direct sparse linear solves of their fixpoint equations, and the
ancestor-label oracle for directed CC walks reachability with networkx.
The test-suite compares every engine against these on randomized graphs.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graph.digraph import DiGraph

__all__ = [
    "bfs_levels",
    "sssp_distances",
    "widest_paths",
    "component_min_labels",
    "ancestor_min_labels",
    "pagerank_fixpoint",
    "circuit_voltages",
]

_INF = np.inf


def bfs_levels(graph: DiGraph, source: int) -> np.ndarray:
    """Hop distance from ``source`` along edge direction (inf = unreachable)."""
    n = graph.num_vertices
    levels = np.full(n, _INF)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    src = graph.src.astype(np.int64)
    dst = graph.dst.astype(np.int64)
    while frontier.size:
        level += 1
        on_frontier = np.zeros(n, dtype=bool)
        on_frontier[frontier] = True
        candidates = dst[on_frontier[src]]
        fresh = candidates[levels[candidates] == _INF]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        levels[fresh] = level
        frontier = fresh
    return levels


def sssp_distances(graph: DiGraph, source: int) -> np.ndarray:
    """Dijkstra distances from ``source`` (inf = unreachable)."""
    weights = (
        np.ones(graph.num_edges) if graph.weights is None else graph.weights
    )
    n = graph.num_vertices
    # Parallel edges: keep the minimum weight (csr_matrix would *sum* them).
    dedup: dict[tuple[int, int], float] = {}
    for s, d, w in zip(graph.src.tolist(), graph.dst.tolist(), weights.tolist()):
        k = (s, d)
        if k not in dedup or w < dedup[k]:
            dedup[k] = float(w)
    if dedup:
        rows, cols = zip(*dedup.keys())
        adj = sp.csr_matrix((list(dedup.values()), (rows, cols)), shape=(n, n))
    else:
        adj = sp.csr_matrix((n, n))
    return csgraph.dijkstra(adj, directed=True, indices=source)


def widest_paths(graph: DiGraph, source: int) -> np.ndarray:
    """Maximum-bottleneck path width from ``source`` (0 = unreachable,
    inf at the source itself) — max-min Dijkstra on a heap."""
    n = graph.num_vertices
    weights = (
        np.ones(graph.num_edges) if graph.weights is None else graph.weights
    )
    out_adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for s, d, w in zip(graph.src.tolist(), graph.dst.tolist(), weights.tolist()):
        out_adj[s].append((d, w))
    width = np.zeros(n)
    width[source] = _INF
    heap = [(-_INF, source)]
    done = np.zeros(n, dtype=bool)
    while heap:
        negw, v = heapq.heappop(heap)
        if done[v]:
            continue
        done[v] = True
        for u, w in out_adj[v]:
            cand = min(-negw, w)
            if cand > width[u]:
                width[u] = cand
                heapq.heappush(heap, (-cand, u))
    return width


def component_min_labels(graph: DiGraph) -> np.ndarray:
    """For a *symmetric* graph: each vertex's weakly-connected-component
    label, canonicalized to the minimum vertex index in the component."""
    n = graph.num_vertices
    adj = sp.csr_matrix(
        (np.ones(graph.num_edges), (graph.src, graph.dst)), shape=(n, n)
    )
    _, comp = csgraph.connected_components(adj, directed=False)
    mins = np.full(comp.max() + 1 if n else 1, n, dtype=np.int64)
    np.minimum.at(mins, comp, np.arange(n, dtype=np.int64))
    return mins[comp]


def ancestor_min_labels(graph: DiGraph) -> np.ndarray:
    """Directed min-label-propagation fixpoint: for every vertex, the minimum
    index over itself and all vertices that can reach it.  O(V·E); intended
    for small test graphs only."""
    import networkx as nx

    g = graph.to_networkx()
    labels = np.arange(graph.num_vertices, dtype=np.int64)
    for u in range(graph.num_vertices):
        for v in nx.descendants(g, u):
            labels[v] = min(labels[v], u)
    return labels


def pagerank_fixpoint(graph: DiGraph, damping: float = 0.85) -> np.ndarray:
    """Exact fixpoint of the paper's unnormalized PageRank:
    ``r = (1 - d) 1 + d · P r`` with ``P[v, u] = 1/outdeg(u)`` for edges
    ``u -> v``, solved directly."""
    n = graph.num_vertices
    outdeg = graph.out_degrees().astype(np.float64)
    inv = np.zeros(n)
    nz = outdeg > 0
    inv[nz] = 1.0 / outdeg[nz]
    data = inv[graph.src]
    p = sp.csr_matrix((data, (graph.dst, graph.src)), shape=(n, n))
    a = sp.eye(n, format="csr") - damping * p
    b = np.full(n, 1.0 - damping)
    return sp.linalg.spsolve(a.tocsc(), b)


def circuit_voltages(
    graph: DiGraph,
    conductances: np.ndarray,
    sources: tuple[tuple[int, float], ...],
) -> np.ndarray:
    """Exact fixpoint of the CS relaxation: pinned sources keep their
    voltage; every other vertex with inflow satisfies
    ``V_v = Σ G_e V_src(e) / Σ G_e``; vertices with no inflow stay 0."""
    n = graph.num_vertices
    pinned = np.zeros(n, dtype=bool)
    voltage = np.zeros(n)
    for v, volt in sources:
        pinned[v] = True
        voltage[v] = volt
    gsum = np.zeros(n)
    np.add.at(gsum, graph.dst, conductances)
    w = sp.csr_matrix(
        (conductances, (graph.dst, graph.src)), shape=(n, n)
    ).tolil()
    a = sp.eye(n, format="lil")
    b = np.zeros(n)
    for v in range(n):
        if pinned[v]:
            b[v] = voltage[v]
        elif gsum[v] > 0:
            a[v, :] = -w[v, :] / gsum[v]
            a[v, v] += 1.0
            b[v] = 0.0
        # no inflow: V stays 0 (identity row, b = 0)
    return sp.linalg.spsolve(sp.csr_matrix(a).tocsc(), b)
