"""Golden reference answers (independent oracles for the test-suite)."""

from repro.reference.golden import (
    bfs_levels,
    sssp_distances,
    widest_paths,
    component_min_labels,
    ancestor_min_labels,
    pagerank_fixpoint,
    circuit_voltages,
)

__all__ = [
    "bfs_levels",
    "sssp_distances",
    "widest_paths",
    "component_min_labels",
    "ancestor_min_labels",
    "pagerank_fixpoint",
    "circuit_voltages",
]
