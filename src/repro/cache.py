"""Cross-run representation cache.

The bench suites (fig10-13, tables 4-7, the ablations) run the same graphs
through many engines and programs, yet every run used to rebuild ``CSR`` /
``GShards`` / ``ConcatenatedWindows`` plus the static per-shard
:class:`~repro.gpu.stats.KernelStats` bundles from scratch.  This module
memoizes those artifacts across runs.

Keying and invalidation
-----------------------
Entries are keyed on ``(kind, graph fingerprint, *params)``:

- the **fingerprint** (:func:`graph_fingerprint`) is a blake2b hash over the
  graph's vertex count and its ``src`` / ``dst`` arrays.  It is *structural
  only*: representations depend on topology, never on edge weights (engines
  gather per-edge values through ``edge_positions`` from the graph actually
  passed to ``run``), so two graphs differing only in weights share entries.
  The fingerprint is recomputed on every lookup, so mutating a graph's
  arrays in place naturally misses instead of returning stale structures.
- the **params** are whatever the artifact depends on — shard size ``N``,
  engine mode, warp size, the program's value layout (vertex/static/edge
  byte widths), virtual warp size, and so on.  Call sites are responsible
  for including every input of the builder in the key.

The cache is a bounded LRU (default 64 entries); eviction drops the least
recently used artifact.  ``hits`` / ``misses`` counters are cumulative and
engines publish per-run deltas to the ``MetricsRegistry`` as ``cache.hits``
and ``cache.misses`` when a tracer is attached.

Selection
---------
Engines accept a ``cache`` option: ``None`` (default) uses the process-wide
:func:`default_cache`, ``False`` disables caching, and an explicit
:class:`RepresentationCache` scopes the memo to the caller.  The
``exec_path="reference"`` path bypasses the cache entirely so a caching bug
can never contaminate the equivalence baseline.

Share-vs-copy contract
----------------------
``get`` hands out the *same* object to every borrower — hits never copy.
To keep one borrower's bug from corrupting every later run, the ndarrays
reachable from a cached artifact are frozen (``writeable=False``) when the
entry is inserted: an in-place write through a cached representation raises
``ValueError`` instead of silently poisoning the memo.  The borrower's own
graph is exempt (a ``graph`` attribute is never traversed) — only the
derived representation is read-only.  See ``docs/performance.md``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np

__all__ = [
    "RepresentationCache",
    "graph_fingerprint",
    "default_cache",
    "resolve_cache",
]


def graph_fingerprint(graph) -> str:
    """Structural content hash of a :class:`~repro.graph.digraph.DiGraph`.

    Hashes the vertex count plus the raw bytes of the ``src`` and ``dst``
    arrays.  Weights are deliberately excluded (see module docstring).
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.int64(graph.num_vertices).tobytes())
    h.update(np.ascontiguousarray(graph.src).tobytes())
    h.update(np.ascontiguousarray(graph.dst).tobytes())
    return h.hexdigest()


def _freeze_arrays(value: Any, _seen: set[int] | None = None) -> None:
    """Mark every ndarray reachable from ``value`` read-only, in place.

    Recurses through containers and ``repro``-defined objects (``__dict__``
    and ``__slots__``), but never through a ``graph`` attribute: cached
    artifacts are derived *from* a user graph and must not freeze it.
    """
    if _seen is None:
        _seen = set()
    if id(value) in _seen:
        return
    _seen.add(id(value))
    if isinstance(value, np.ndarray):
        value.flags.writeable = False
        return
    if isinstance(value, (tuple, list)):
        for item in value:
            _freeze_arrays(item, _seen)
        return
    if isinstance(value, dict):
        for item in value.values():
            _freeze_arrays(item, _seen)
        return
    if not type(value).__module__.startswith("repro."):
        return
    attrs: dict[str, Any] = dict(getattr(value, "__dict__", None) or {})
    for klass in type(value).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if hasattr(value, name):
                attrs.setdefault(name, getattr(value, name))
    for name, item in attrs.items():
        if name != "graph":
            _freeze_arrays(item, _seen)


class RepresentationCache:
    """Bounded LRU memo for graph representations and stats bundles."""

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._store: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``key``, building it on a miss."""
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.hits += 1
                return self._store[key]
        value = builder()  # build outside the lock; builders may be slow
        _freeze_arrays(value)
        with self._lock:
            self.misses += 1
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached artifact for ``key`` without building on a miss.

        A present entry counts as a hit and is promoted to most-recently
        used (so checkpoint reads participate in LRU ordering exactly like
        representation lookups); an absent one returns ``default`` without
        touching the miss counter — the caller decides what a miss means.
        """
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.hits += 1
                return self._store[key]
            return default

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert (or overwrite) ``key`` directly, freezing like :meth:`get`.

        The checkpoint store uses this to publish snapshots it has already
        built; overwriting is allowed because a re-saved checkpoint for the
        same ``(run, iteration)`` is by construction the same state.
        """
        _freeze_arrays(value)
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
        return value

    def counters(self) -> tuple[int, int]:
        """Current ``(hits, misses)`` snapshot (for per-run deltas)."""
        with self._lock:
            return self.hits, self.misses

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RepresentationCache(entries={len(self._store)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_DEFAULT = RepresentationCache()


def default_cache() -> RepresentationCache:
    """The process-wide cache engines use when ``cache=None``."""
    return _DEFAULT


def resolve_cache(cache) -> RepresentationCache | None:
    """Normalize an engine's ``cache`` option.

    ``None`` selects the process-wide default, ``False`` disables caching
    (returns ``None``), and a :class:`RepresentationCache` is passed
    through.
    """
    if cache is None:
        return _DEFAULT
    if cache is False:
        return None
    if isinstance(cache, RepresentationCache):
        return cache
    raise TypeError(
        "cache must be None (default cache), False (disabled), or a "
        f"RepresentationCache; got {type(cache).__name__}"
    )
