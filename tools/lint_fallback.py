#!/usr/bin/env python
"""Stdlib-only fallback linter for ``make lint`` when ruff is unavailable.

Implements the highest-value subset of the pyflakes ``F`` family over plain
``ast``, so the lint gate always runs — even in environments where the
``[lint]`` extra cannot be installed:

- **unused imports** (ruff F401): a name imported at module level that is
  never referenced and not re-exported.  ``__init__.py`` files are treated
  as re-export surfaces and exempted; ``# noqa`` on the import line is
  honored.
- **duplicate definitions** (F811): a module-level function/class defined
  twice.
- **f-string without placeholders** (F541).
- **assert on a non-empty tuple** (F631): always true, almost always a bug.

Usage: ``python tools/lint_fallback.py <path> [<path> ...]``; exits 1 when
any finding is reported.  With no paths it checks the same roots the
``make lint`` gate does: ``src/repro``, ``tools``, ``tests``, and
``benchmarks``.
"""

from __future__ import annotations

import ast
import pathlib
import sys


def _imported_names(node: ast.AST) -> list[tuple[str, int]]:
    """(bound name, line) pairs for one import statement."""
    out = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            out.append((bound, node.lineno))
    elif isinstance(node, ast.ImportFrom):
        if node.module == "__future__":
            return []
        for alias in node.names:
            if alias.name == "*":
                continue
            out.append((alias.asname or alias.name, node.lineno))
    return out


def _used_names(tree: ast.Module) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # ``repro.graph.csr`` used as ``repro.…`` marks ``repro`` used;
            # ast.Name on the root covers that already.
            pass
    # Names re-exported through __all__ count as used.
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            targets = [node.target]
        if any(t.id == "__all__" for t in targets):
            for const in ast.walk(node.value):
                if isinstance(const, ast.Constant) and isinstance(const.value, str):
                    used.add(const.value)
    return used


def _noqa_lines(source: str) -> set[int]:
    return {
        i
        for i, line in enumerate(source.splitlines(), start=1)
        if "# noqa" in line
    }


def lint_file(path: pathlib.Path) -> list[str]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]
    findings: list[str] = []
    noqa = _noqa_lines(source)

    # ---- unused imports (module level; __init__.py is a re-export surface)
    if path.name != "__init__.py":
        used = _used_names(tree)
        for node in tree.body:
            for name, lineno in _imported_names(node):
                if lineno in noqa or name.startswith("_"):
                    continue
                if name not in used:
                    findings.append(
                        f"{path}:{lineno}: unused import {name!r} (F401)"
                    )

    # ---- duplicate module-level definitions (F811)
    seen: dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name in seen and node.lineno not in noqa:
                findings.append(
                    f"{path}:{node.lineno}: redefinition of {node.name!r} "
                    f"from line {seen[node.name]} (F811)"
                )
            seen[node.name] = node.lineno

    # Format specs (``f"{x:10.2f}"``) parse as nested JoinedStr nodes made
    # of Constants only; they are not f-strings the author wrote and must
    # not count toward F541.
    format_specs = {
        id(node.format_spec)
        for node in ast.walk(tree)
        if isinstance(node, ast.FormattedValue) and node.format_spec is not None
    }
    for node in ast.walk(tree):
        # ---- f-string without any placeholder (F541)
        if isinstance(node, ast.JoinedStr) and id(node) not in format_specs:
            if not any(isinstance(v, ast.FormattedValue) for v in node.values):
                if node.lineno not in noqa:
                    findings.append(
                        f"{path}:{node.lineno}: f-string without placeholders "
                        f"(F541)"
                    )
        # ---- assert on a tuple literal (F631)
        elif isinstance(node, ast.Assert) and isinstance(node.test, ast.Tuple):
            if node.test.elts and node.lineno not in noqa:
                findings.append(
                    f"{path}:{node.lineno}: assert on a non-empty tuple is "
                    f"always true (F631)"
                )
    return findings


def main(argv: list[str]) -> int:
    roots = [pathlib.Path(a) for a in argv] or [
        pathlib.Path("src/repro"), pathlib.Path("tools"),
        pathlib.Path("tests"), pathlib.Path("benchmarks"),
    ]
    files: list[pathlib.Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    findings: list[str] = []
    for f in files:
        findings.extend(lint_file(f))
    for line in findings:
        print(line)
    print(
        f"lint_fallback: {len(files)} files, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
